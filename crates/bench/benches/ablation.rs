//! Criterion timing for the router's look-ahead cost: how expensive is
//! the Eq. 1 score as the window grows (complements the quality ablation
//! in `src/bin/ablation.rs`).
//!
//! Run with: `cargo bench -p bench --bench ablation`

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tilt_benchmarks::qft::qft;
use tilt_compiler::decompose::decompose;
use tilt_compiler::mapping::InitialMapping;
use tilt_compiler::route::LinqConfig;
use tilt_compiler::{DeviceSpec, RouterKind};

fn bench_lookahead_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("linq_lookahead_cost_qft32");
    group.sample_size(10);
    let circuit = qft(32);
    let native = decompose(&circuit);
    let spec = DeviceSpec::new(32, 8).unwrap();
    let initial = InitialMapping::Identity.build(&native, spec.n_ions());
    for lookahead in [1usize, 32, 128, 512] {
        let cfg = LinqConfig {
            lookahead,
            ..LinqConfig::default()
        };
        group.bench_function(format!("window_{lookahead}"), |b| {
            b.iter(|| {
                RouterKind::Linq(cfg)
                    .route(black_box(&native), spec, &initial)
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_initial_mapping_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("initial_mapping_qft64");
    let circuit = qft(64);
    let native = decompose(&circuit);
    for (name, strategy) in [
        ("identity", InitialMapping::Identity),
        ("interaction_chain", InitialMapping::InteractionChain),
    ] {
        group.bench_function(name, |b| b.iter(|| strategy.build(black_box(&native), 64)));
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_lookahead_cost,
    bench_initial_mapping_strategies
);
criterion_main!(benches);
