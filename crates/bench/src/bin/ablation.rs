//! Ablations of the design choices called out in DESIGN.md §5:
//!
//! 1. Eq. 1 look-ahead decay `α` (QFT, head 16)
//! 2. look-ahead window size, where a window of 1 reduces Algorithm 1 to
//!    current-gate greediness and suppresses opposing swaps
//! 3. tape scheduler: Algorithm 2 greedy vs naive next-gate
//! 4. `k ∝ √n` heating scaling vs constant `k`
//! 5. QCCD sympathetic cooling on/off
//! 6. initial-mapping strategy (BV, head 16)
//! 7. LinQ optimality gap vs the exact minimal-swap router
//!
//! Run with: `cargo run --release -p bench --bin ablation`

use bench::evaluate_tilt;
use tilt_benchmarks::{bv::bv64, qaoa::qaoa64, qft::qft64, rcs::rcs64};
use tilt_circuit::{Circuit, Qubit};
use tilt_compiler::mapping::{InitialMapping, Mapping};
use tilt_compiler::route::exact::{optimal_route, ExactConfig};
use tilt_compiler::route::LinqConfig;
use tilt_compiler::{Compiler, DeviceSpec, RouterKind, SchedulerKind};
use tilt_qccd::{compile_qccd, estimate_qccd_success, QccdParams, QccdSpec};
use tilt_report::{fmt_success, Table};
use tilt_sim::{estimate_success, GateTimeModel, NoiseModel};

fn main() {
    alpha_sweep();
    lookahead_window();
    scheduler_choice();
    heating_scaling();
    qccd_cooling();
    initial_mapping_study();
    optimality_gap();
}

fn alpha_sweep() {
    println!("Ablation 1: Eq. 1 look-ahead decay α (QFT, head 16)\n");
    let circuit = qft64();
    let mut table = Table::new(["alpha", "#swaps", "opposing", "#moves", "success"]);
    for alpha in [0.5, 0.7, 0.9, 0.95] {
        let cfg = LinqConfig {
            alpha,
            ..LinqConfig::default()
        };
        let eval = evaluate_tilt(&circuit, 16, RouterKind::Linq(cfg));
        let r = &eval.output.report;
        table.row([
            format!("{alpha}"),
            r.swap_count.to_string(),
            format!("{:.2}", r.opposing_ratio),
            r.move_count.to_string(),
            fmt_success(eval.success.success),
        ]);
    }
    println!("{}", table.render());
    println!("Small α collapses Eq. 1 into per-gate greediness: swap and move");
    println!("counts inflate several-fold. α = 0.9 is the shipped default.\n");
}

fn lookahead_window() {
    println!("Ablation 2: look-ahead window size (QFT, head 16)\n");
    let circuit = qft64();
    let mut table = Table::new(["window", "#swaps", "opposing", "#moves", "success"]);
    for lookahead in [1usize, 8, 32, 128] {
        let cfg = LinqConfig {
            lookahead,
            ..LinqConfig::default()
        };
        let eval = evaluate_tilt(&circuit, 16, RouterKind::Linq(cfg));
        let r = &eval.output.report;
        table.row([
            lookahead.to_string(),
            r.swap_count.to_string(),
            format!("{:.2}", r.opposing_ratio),
            r.move_count.to_string(),
            fmt_success(eval.success.success),
        ]);
    }
    println!("{}", table.render());
    println!("A window of 1 scores only the gate being resolved — opposing");
    println!("swaps (which need awareness of other traffic) largely vanish.\n");
}

fn scheduler_choice() {
    println!("Ablation 3: tape scheduler (Algorithm 2 greedy vs naive next-gate)\n");
    let mut table = Table::new(["app", "scheduler", "#moves", "success"]);
    for (name, circuit) in [("QAOA", qaoa64()), ("RCS", rcs64())] {
        for (label, kind) in [
            ("greedy (Alg. 2)", SchedulerKind::GreedyMaxExecutable),
            ("naive next-gate", SchedulerKind::NaiveNextGate),
        ] {
            let spec = DeviceSpec::new(circuit.n_qubits(), 16).unwrap();
            let mut compiler = Compiler::new(spec);
            compiler.scheduler(kind);
            let out = compiler.compile(&circuit).unwrap();
            let s = estimate_success(
                &out.program,
                &NoiseModel::default(),
                &GateTimeModel::default(),
            );
            table.row([
                name.to_string(),
                label.to_string(),
                out.report.move_count.to_string(),
                fmt_success(s.success),
            ]);
        }
    }
    println!("{}", table.render());
    println!("Maximizing executable gates per position (Eq. 2) batches whole");
    println!("layers per head stop; chasing the next ready gate does not.\n");
}

fn heating_scaling() {
    println!("Ablation 4: k ∝ √n heating scaling vs constant k (QFT, head 16)\n");
    let circuit = qft64();
    let eval = evaluate_tilt(&circuit, 16, RouterKind::default());
    let times = GateTimeModel::default();
    let sqrt_n = NoiseModel::default();
    // Constant-k model: the 64-ion chain heats like the 8-ion reference.
    let constant = NoiseModel {
        n_ref: 64.0,
        ..NoiseModel::default()
    };
    let mut table = Table::new(["heating model", "k(64)", "success"]);
    for (label, noise) in [("k ∝ √n (paper)", sqrt_n), ("constant k", constant)] {
        let s = estimate_success(&eval.output.program, &noise, &times);
        table.row([
            label.to_string(),
            format!("{:.3}", noise.k_for_chain(64)),
            fmt_success(s.success),
        ]);
    }
    println!("{}", table.render());
    println!("Ignoring the centre-of-mass softening understates shuttling cost");
    println!("on long chains by orders of magnitude on move-heavy programs.\n");
}

fn qccd_cooling() {
    println!("Ablation 5: QCCD sympathetic cooling (QAOA)\n");
    let native = tilt_compiler::decompose::decompose(&qaoa64());
    let spec = QccdSpec::for_qubits(64, 17).unwrap();
    let program = compile_qccd(&native, &spec).unwrap();
    let noise = NoiseModel::default();
    let times = GateTimeModel::default();
    let mut table = Table::new(["cooling", "rounds", "peak quanta", "success"]);
    for (label, params) in [
        ("on (default)", QccdParams::default()),
        ("off", QccdParams::default().without_cooling()),
    ] {
        let r = estimate_qccd_success(&program, &noise, &times, &params);
        table.row([
            label.to_string(),
            r.cooling_rounds.to_string(),
            format!("{:.1}", r.peak_quanta),
            fmt_success(r.success),
        ]);
    }
    println!("{}", table.render());
    println!("Without re-cooling, transport heat accumulates for the whole");
    println!("program and QCCD collapses on communication-heavy workloads —");
    println!("cooling is what keeps the Fig. 8 comparison competitive.\n");
}

fn initial_mapping_study() {
    println!("Ablation 6: initial-mapping strategy (BV, head 16)\n");
    let circuit = bv64();
    let noise = NoiseModel::default();
    let times = GateTimeModel::default();
    let mut table = Table::new(["strategy", "#swaps", "#moves", "success"]);
    let strategies = [
        ("identity", InitialMapping::Identity),
        ("interaction chain", InitialMapping::InteractionChain),
        ("reverse", InitialMapping::Reverse),
        ("random (seed 1)", InitialMapping::Random(1)),
    ];
    for (label, strategy) in strategies {
        let mut compiler = Compiler::new(DeviceSpec::tilt64(16));
        compiler.initial_mapping(strategy);
        let out = compiler.compile(&circuit).expect("BV compiles");
        let s = estimate_success(&out.program, &noise, &times);
        table.row([
            label.to_string(),
            out.report.swap_count.to_string(),
            out.report.move_count.to_string(),
            fmt_success(s.success),
        ]);
    }
    println!("{}", table.render());
    println!("The interaction-chain heuristic ([40,51]-style placement) centres");
    println!("BV's ancilla among its partners and nearly halves the swaps; a");
    println!("random start costs real success. This is the paper's point that a");
    println!("good initial mapping 'can also reduce the number of swap gates'.\n");
}

fn optimality_gap() {
    println!("Ablation 7: LinQ optimality gap vs the exact router (7 ions, head 3)\n");
    let spec = DeviceSpec::new(7, 3).expect("valid spec");
    let mut rows = 0usize;
    let (mut linq_total, mut opt_total) = (0usize, 0usize);
    let mut table = Table::new(["instance", "LinQ swaps", "optimal swaps"]);
    for seed in 0..8usize {
        let mut c = Circuit::new(7);
        for i in 0..5 {
            let a = (seed * 3 + i * 2) % 7;
            let b = (a + 3 + (seed + i) % 3) % 7;
            if a != b {
                c.xx(Qubit(a), Qubit(b), 0.1);
            }
        }
        let initial = Mapping::identity(7);
        let linq = RouterKind::default()
            .route(&c, spec, &initial)
            .expect("routes")
            .swap_count;
        let opt = optimal_route(&c, spec, &initial, &ExactConfig::default())
            .expect("searches")
            .swap_count;
        table.row([format!("seed {seed}"), linq.to_string(), opt.to_string()]);
        linq_total += linq;
        opt_total += opt;
        rows += 1;
    }
    println!("{}", table.render());
    println!(
        "aggregate over {rows} instances: LinQ {linq_total} vs optimal {opt_total} \
         ({:.0}% overhead) — the heuristic tracks the ILP-style lower bound closely.",
        100.0 * (linq_total as f64 - opt_total as f64) / opt_total.max(1) as f64
    );
}
