//! Bench-regression gate: compares the current `BENCH_*.json` records
//! against a previous run's artifacts and fails on speedup drops.
//!
//! ```text
//! bench_gate <previous_dir> [current_dir (default ".")]
//! ```
//!
//! Two tiers of metrics, both at a 20% tolerance:
//!
//! * **Gating** — the *same-run* speedup ratios (optimized vs retained
//!   baseline, measured within one process on one machine). These are
//!   insensitive to CI runner hardware, so a >20% drop means the code
//!   actually got slower relative to its own baseline: exit 1.
//! * **Advisory** — absolute throughput (gates/sec, routes/sec,
//!   moves/sec) across runs. These regress whenever a shared runner is
//!   slow, so drops only print a loud `WARN` for a human to eyeball.
//!
//! Missing files or metrics — the first CI run, or a record schema that
//! grew a new field — only warn, so the gate never blocks
//! bootstrapping; a workload present in the previous run but missing
//! from the current one warns too (a silently dropped benchmark is not
//! a pass).

use std::path::Path;
use std::process::ExitCode;
use tilt_report::Json;

/// Largest tolerated drop: `current / previous` below this fails (for
/// gating metrics) or warns (for advisory metrics).
const MIN_RATIO: f64 = 0.8;

/// Same-run speedup ratios: regressions here are code, not hardware.
const GATING: [(&str, &str); 2] = [
    ("BENCH_statevec.json", "speedup"),
    ("BENCH_router.json", "speedup"),
];

/// Cross-run absolute throughput: advisory only (runner-speed noise).
const ADVISORY: [(&str, &str); 4] = [
    ("BENCH_statevec.json", "optimized_gates_per_sec"),
    ("BENCH_statevec.json", "permutation.parallel_gates_per_sec"),
    ("BENCH_router.json", "incremental_routes_per_sec"),
    ("BENCH_router.json", "reference_routes_per_sec"),
];

fn load(dir: &Path, file: &str) -> Option<Json> {
    let path = dir.join(file);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(_) => {
            println!("warn: {} not found — skipping its metrics", path.display());
            return None;
        }
    };
    match Json::parse(&text) {
        Ok(j) => Some(j),
        Err(e) => {
            println!("warn: {} unparsable ({e}) — skipping", path.display());
            None
        }
    }
}

/// Compares one metric; returns `true` when it dropped beyond
/// [`MIN_RATIO`]. `gating` only affects the printed verdict.
fn check(label: &str, prev: Option<f64>, cur: Option<f64>, gating: bool) -> bool {
    let (Some(prev), Some(cur)) = (prev, cur) else {
        println!("warn: {label}: metric missing in one run — skipping");
        return false;
    };
    if !(prev.is_finite() && cur.is_finite()) || prev <= 0.0 {
        println!("warn: {label}: non-finite or non-positive baseline — skipping");
        return false;
    }
    let ratio = cur / prev;
    let dropped = ratio < MIN_RATIO;
    let verdict = match (dropped, gating) {
        (false, _) => "ok",
        (true, true) => "REGRESSED",
        (true, false) => "WARN (advisory: absolute throughput, may be runner noise)",
    };
    println!(
        "{label}: {prev:.2} -> {cur:.2} ({:+.1}%) {verdict}",
        (ratio - 1.0) * 100.0
    );
    dropped
}

/// `(benchmark name, same-run speedup, absolute moves/sec)` per
/// scheduler workload.
fn scheduler_workloads(j: &Json) -> Vec<(String, Option<f64>, Option<f64>)> {
    j.get("workloads")
        .and_then(Json::as_array)
        .map(|ws| {
            ws.iter()
                .filter_map(|w| {
                    let name = w.get("benchmark")?.as_str()?.to_string();
                    let speedup = w.get("speedup").and_then(Json::as_f64);
                    let rate = w.get("incremental_moves_per_sec").and_then(Json::as_f64);
                    Some((name, speedup, rate))
                })
                .collect()
        })
        .unwrap_or_default()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 2 || args.len() > 3 {
        eprintln!("usage: bench_gate <previous_dir> [current_dir]");
        return ExitCode::from(2);
    }
    let prev_dir = Path::new(&args[1]);
    let cur_dir = Path::new(args.get(2).map(String::as_str).unwrap_or("."));

    // Read each record once per directory, not once per metric.
    let files = [
        "BENCH_statevec.json",
        "BENCH_router.json",
        "BENCH_scheduler.json",
    ];
    let records = |dir: &Path| -> Vec<(&str, Option<Json>)> {
        files.iter().map(|&f| (f, load(dir, f))).collect()
    };
    let prev_records = records(prev_dir);
    let cur_records = records(cur_dir);
    let field = |records: &[(&str, Option<Json>)], file: &str, path: &str| -> Option<f64> {
        records
            .iter()
            .find(|(f, _)| *f == file)
            .and_then(|(_, j)| j.as_ref())
            .and_then(|j| j.get_path(path))
            .and_then(Json::as_f64)
    };

    let mut regressed = false;
    for (gating, metrics) in [(true, &GATING[..]), (false, &ADVISORY[..])] {
        for &(file, path) in metrics {
            let prev = field(&prev_records, file, path);
            let cur = field(&cur_records, file, path);
            let dropped = check(&format!("{file}:{path}"), prev, cur, gating);
            regressed |= dropped && gating;
        }
    }

    // Scheduler records hold one entry per workload; match them by name
    // in both directions so a vanished workload is visible.
    let sched = |records: &[(&str, Option<Json>)]| -> Option<Json> {
        records
            .iter()
            .find(|(f, _)| *f == "BENCH_scheduler.json")
            .and_then(|(_, j)| j.clone())
    };
    if let (Some(prev), Some(cur)) = (sched(&prev_records), sched(&cur_records)) {
        let prev_ws = scheduler_workloads(&prev);
        let cur_ws = scheduler_workloads(&cur);
        for (name, cur_speedup, cur_rate) in &cur_ws {
            let previous = prev_ws.iter().find(|(n, _, _)| n == name);
            let dropped = check(
                &format!("BENCH_scheduler.json:{name}:speedup"),
                previous.and_then(|(_, s, _)| *s),
                *cur_speedup,
                true,
            );
            regressed |= dropped;
            check(
                &format!("BENCH_scheduler.json:{name}:incremental_moves_per_sec"),
                previous.and_then(|(_, _, r)| *r),
                *cur_rate,
                false,
            );
        }
        for (name, _, _) in &prev_ws {
            if !cur_ws.iter().any(|(n, _, _)| n == name) {
                println!(
                    "warn: BENCH_scheduler.json: workload {name} present in the previous run is missing from this one"
                );
            }
        }
    }

    if regressed {
        eprintln!(
            "bench gate: same-run speedup regressed more than {:.0}%",
            (1.0 - MIN_RATIO) * 100.0
        );
        ExitCode::FAILURE
    } else {
        println!(
            "bench gate: no gating regressions beyond {:.0}%",
            (1.0 - MIN_RATIO) * 100.0
        );
        ExitCode::SUCCESS
    }
}
