//! Bench-regression gate: compares the current `BENCH_*.json` records
//! against a baseline built from previous runs and fails on speedup
//! drops.
//!
//! ```text
//! bench_gate <baseline_dir> [current_dir (default ".")]
//! ```
//!
//! `baseline_dir` holds either one previous run's records directly, or
//! **subdirectories with one run each** (CI downloads the artifacts of
//! the last ≤5 successful main-branch runs into `prev-bench/run-*/`).
//! With several runs the baseline for every metric is the **rolling
//! median** across them, which resists a single noisy runner skewing
//! the yardstick; with one run it degrades to the old previous-run
//! comparison.
//!
//! Two tiers of metrics, both at a 20% tolerance:
//!
//! * **Gating** — the *same-run* speedup ratios (optimized vs retained
//!   baseline, measured within one process on one machine). These are
//!   insensitive to CI runner hardware, so a >20% drop against the
//!   median means the code actually got slower relative to its own
//!   baseline: exit 1.
//! * **Advisory** — absolute throughput (gates/sec, routes/sec,
//!   moves/sec, circuits/sec). These regress whenever a shared runner
//!   is slow, so drops only print a loud `WARN` for a human to eyeball.
//!
//! Missing files or metrics — the first CI run, or a record schema that
//! grew a new field — only warn, so the gate never blocks
//! bootstrapping; a workload present in the baseline but missing from
//! the current run warns too (a silently dropped benchmark is not a
//! pass).

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use tilt_report::Json;

/// Largest tolerated drop: `current / baseline` below this fails (for
/// gating metrics) or warns (for advisory metrics).
const MIN_RATIO: f64 = 0.8;

/// Most baseline runs folded into the rolling median.
const MAX_BASELINE_RUNS: usize = 5;

/// Every record file a run may produce.
const FILES: [&str; 7] = [
    "BENCH_statevec.json",
    "BENCH_router.json",
    "BENCH_scheduler.json",
    "BENCH_engine.json",
    "BENCH_service.json",
    "BENCH_stabilizer.json",
    "BENCH_compiler.json",
];

/// Same-run speedup ratios: regressions here are code, not hardware.
/// `simd.speedup` is the dispatched-tier vs forced-scalar ratio; on a
/// scalar-only runner both the baseline median and the current run sit
/// at ~1.0 (the tiers coincide), so the gate stays quiet there and only
/// bites when an AVX2 runner's SIMD win erodes.
const GATING: [(&str, &str); 3] = [
    ("BENCH_statevec.json", "speedup"),
    ("BENCH_statevec.json", "simd.speedup"),
    ("BENCH_router.json", "speedup"),
];

/// Cross-run absolute throughput, plus the engine batch ratio (which
/// can hinge on runner core count): advisory only.
const ADVISORY: [(&str, &str); 18] = [
    ("BENCH_statevec.json", "optimized_gates_per_sec"),
    ("BENCH_statevec.json", "simd.simd_gates_per_sec"),
    ("BENCH_statevec.json", "permutation.parallel_gates_per_sec"),
    ("BENCH_router.json", "incremental_routes_per_sec"),
    ("BENCH_router.json", "reference_routes_per_sec"),
    ("BENCH_engine.json", "batch_circuits_per_sec"),
    ("BENCH_engine.json", "batch_speedup"),
    // Per-circuit throughput with strict static verification on: the
    // verifier's overhead rides the absolute runner speed, so advisory.
    ("BENCH_engine.json", "verify.strict_circuits_per_sec"),
    ("BENCH_service.json", "requests_per_sec"),
    ("BENCH_service.json", "repeat.warm_requests_per_sec"),
    ("BENCH_service.json", "repeat.warm_speedup"),
    // Overload flood throughput (admitted work completed per second,
    // including client backoff time). p99/shed-rate live in the same
    // record but are lower-is-better, which this gate cannot score.
    ("BENCH_service.json", "overload.admission.requests_per_sec"),
    ("BENCH_service.json", "overload.open_loop.requests_per_sec"),
    // QEC-scale tableau throughput: raw simulator and through-Engine
    // rates are both absolute, so runner speed moves them — advisory.
    ("BENCH_stabilizer.json", "tableau_measurements_per_sec"),
    ("BENCH_stabilizer.json", "engine_measurements_per_sec"),
    // Streaming compile on the million-gate workload. The ratios are
    // same-run, but single-sample (a ~4 s compile each) and the memory
    // ratio hinges on runner page accounting — advisory until a
    // baseline window shows them stable.
    ("BENCH_compiler.json", "streaming.streaming_gates_per_sec"),
    ("BENCH_compiler.json", "streaming.throughput_ratio"),
    ("BENCH_compiler.json", "streaming.peak_memory_ratio"),
];

/// One run's records, keyed by file name.
type Run = Vec<(&'static str, Option<Json>)>;

/// One scheduler workload's metrics:
/// `(name, speedup, moves/sec, pruned_speedup)`.
type WorkloadRow = (String, Option<f64>, Option<f64>, Option<f64>);

fn load(dir: &Path, file: &str, warn_missing: bool) -> Option<Json> {
    let path = dir.join(file);
    let Ok(text) = std::fs::read_to_string(&path) else {
        if warn_missing {
            println!("warn: {} not found — skipping its metrics", path.display());
        }
        return None;
    };
    match Json::parse(&text) {
        Ok(j) => Some(j),
        Err(e) => {
            println!("warn: {} unparsable ({e}) — skipping", path.display());
            None
        }
    }
}

fn records(dir: &Path, warn_missing: bool) -> Run {
    FILES
        .iter()
        .map(|&f| (f, load(dir, f, warn_missing)))
        .collect()
}

/// The baseline runs under `dir`: its run subdirectories when present
/// (newest window downloaded by CI), otherwise `dir` itself as a single
/// run.
fn baseline_runs(dir: &Path) -> Vec<Run> {
    let mut subdirs: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.is_dir() && FILES.iter().any(|f| p.join(f).exists()))
                .collect()
        })
        .unwrap_or_default();
    subdirs.sort();
    subdirs.truncate(MAX_BASELINE_RUNS);
    if subdirs.is_empty() {
        // Missing-file warnings matter in single-run mode; in window
        // mode a run that lacks one record just contributes nothing to
        // that metric's median.
        vec![records(dir, true)]
    } else {
        println!(
            "baseline: rolling median over {} run(s) under {}",
            subdirs.len(),
            dir.display()
        );
        subdirs.iter().map(|p| records(p, false)).collect()
    }
}

fn field(records: &Run, file: &str, path: &str) -> Option<f64> {
    records
        .iter()
        .find(|(f, _)| *f == file)
        .and_then(|(_, j)| j.as_ref())
        .and_then(|j| j.get_path(path))
        .and_then(Json::as_f64)
}

/// Median of the finite values, `None` when no run had the metric.
fn median(mut values: Vec<f64>) -> Option<f64> {
    values.retain(|v| v.is_finite());
    if values.is_empty() {
        return None;
    }
    values.sort_by(f64::total_cmp);
    let n = values.len();
    Some(if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    })
}

/// Compares one metric against the baseline median; returns `true` when
/// it dropped beyond [`MIN_RATIO`]. `gating` only affects the printed
/// verdict.
fn check(label: &str, baseline: Option<f64>, cur: Option<f64>, gating: bool) -> bool {
    let (Some(baseline), Some(cur)) = (baseline, cur) else {
        println!("warn: {label}: metric missing in baseline or current run — skipping");
        return false;
    };
    if !(baseline.is_finite() && cur.is_finite()) || baseline <= 0.0 {
        println!("warn: {label}: non-finite or non-positive baseline — skipping");
        return false;
    }
    let ratio = cur / baseline;
    let dropped = ratio < MIN_RATIO;
    let verdict = match (dropped, gating) {
        (false, _) => "ok",
        (true, true) => "REGRESSED",
        (true, false) => "WARN (advisory: absolute throughput, may be runner noise)",
    };
    println!(
        "{label}: median {baseline:.2} -> {cur:.2} ({:+.1}%) {verdict}",
        (ratio - 1.0) * 100.0
    );
    dropped
}

/// `(benchmark name, same-run speedup, absolute moves/sec, pruned vs
/// full-argmax speedup)` per scheduler workload.
fn scheduler_workloads(j: &Json) -> Vec<WorkloadRow> {
    j.get("workloads")
        .and_then(Json::as_array)
        .map(|ws| {
            ws.iter()
                .filter_map(|w| {
                    let name = w.get("benchmark")?.as_str()?.to_string();
                    let speedup = w.get("speedup").and_then(Json::as_f64);
                    let rate = w.get("incremental_moves_per_sec").and_then(Json::as_f64);
                    let pruned = w.get("pruned_speedup").and_then(Json::as_f64);
                    Some((name, speedup, rate, pruned))
                })
                .collect()
        })
        .unwrap_or_default()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 2 || args.len() > 3 {
        eprintln!("usage: bench_gate <baseline_dir> [current_dir]");
        return ExitCode::from(2);
    }
    let prev_dir = Path::new(&args[1]);
    let cur_dir = Path::new(args.get(2).map(String::as_str).unwrap_or("."));

    let prev_runs = baseline_runs(prev_dir);
    let cur_records = records(cur_dir, true);
    let baseline = |file: &str, path: &str| -> Option<f64> {
        median(
            prev_runs
                .iter()
                .filter_map(|run| field(run, file, path))
                .collect(),
        )
    };

    let mut regressed = false;
    for (gating, metrics) in [(true, &GATING[..]), (false, &ADVISORY[..])] {
        for &(file, path) in metrics {
            let prev = baseline(file, path);
            let cur = field(&cur_records, file, path);
            let dropped = check(&format!("{file}:{path}"), prev, cur, gating);
            regressed |= dropped && gating;
        }
    }

    // Scheduler records hold one entry per workload; median each
    // workload's speedup across the baseline runs and flag workloads
    // that vanished from the current run.
    let sched = |records: &Run| -> Option<Json> {
        records
            .iter()
            .find(|(f, _)| *f == "BENCH_scheduler.json")
            .and_then(|(_, j)| j.clone())
    };
    let prev_sched: Vec<Vec<WorkloadRow>> = prev_runs
        .iter()
        .filter_map(|run| sched(run).map(|j| scheduler_workloads(&j)))
        .collect();
    if let Some(cur) = sched(&cur_records) {
        let per_workload = |name: &str, pick: fn(&WorkloadRow) -> Option<f64>| {
            median(
                prev_sched
                    .iter()
                    .filter_map(|ws| ws.iter().find(|(n, ..)| n == name).and_then(pick))
                    .collect(),
            )
        };
        let cur_ws = scheduler_workloads(&cur);
        for (name, cur_speedup, cur_rate, cur_pruned) in &cur_ws {
            let dropped = check(
                &format!("BENCH_scheduler.json:{name}:speedup"),
                per_workload(name, |(_, s, _, _)| *s),
                *cur_speedup,
                true,
            );
            regressed |= dropped;
            check(
                &format!("BENCH_scheduler.json:{name}:incremental_moves_per_sec"),
                per_workload(name, |(_, _, r, _)| *r),
                *cur_rate,
                false,
            );
            // Pruned vs full-argmax is a same-run ratio, but it is new
            // this cycle: advisory until a baseline window accumulates.
            check(
                &format!("BENCH_scheduler.json:{name}:pruned_speedup"),
                per_workload(name, |(_, _, _, p)| *p),
                *cur_pruned,
                false,
            );
        }
        let baseline_names: std::collections::BTreeSet<&str> = prev_sched
            .iter()
            .flat_map(|ws| ws.iter().map(|(n, ..)| n.as_str()))
            .collect();
        for name in baseline_names {
            if !cur_ws.iter().any(|(n, ..)| n == name) {
                println!(
                    "warn: BENCH_scheduler.json: workload {name} present in a baseline run is missing from this one"
                );
            }
        }
    }

    if regressed {
        eprintln!(
            "bench gate: same-run speedup regressed more than {:.0}% vs the rolling median",
            (1.0 - MIN_RATIO) * 100.0
        );
        ExitCode::FAILURE
    } else {
        println!(
            "bench gate: no gating regressions beyond {:.0}%",
            (1.0 - MIN_RATIO) * 100.0
        );
        ExitCode::SUCCESS
    }
}
