//! Regenerates **Fig. 7** of the TILT paper: success rate, swap count,
//! and tape-move count of BV, QFT, and SQRT under `MaxSwapLen`
//! restrictions from 15 down to 8 (head size 16).
//!
//! Run with: `cargo run --release -p bench --bin fig7`

use bench::evaluate_tilt;
use tilt_benchmarks::suite::long_distance_suite;
use tilt_compiler::route::LinqConfig;
use tilt_compiler::RouterKind;
use tilt_report::{fmt_success, Table};

const HEAD: usize = 16;

fn main() {
    for b in long_distance_suite() {
        let mut table = Table::new(["MaxSwapLen", "#Swaps", "#Moves", "Success"]);
        let mut best: Option<(usize, f64)> = None;
        for max_swap_len in (8..=HEAD - 1).rev() {
            let router = RouterKind::Linq(LinqConfig::with_max_swap_len(max_swap_len));
            let eval = evaluate_tilt(&b.circuit, HEAD, router);
            let r = &eval.output.report;
            table.row([
                max_swap_len.to_string(),
                r.swap_count.to_string(),
                r.move_count.to_string(),
                fmt_success(eval.success.success),
            ]);
            if best.is_none_or(|(_, s)| eval.success.success > s) {
                best = Some((max_swap_len, eval.success.success));
            }
        }
        let (best_len, best_success) = best.expect("sweep is non-empty");
        println!(
            "Fig. 7: {} under MaxSwapLen restriction (head {HEAD})\n",
            b.name
        );
        println!("{}", table.render());
        bench::maybe_print_csv(&table);
        println!(
            "best MaxSwapLen for {}: {best_len} (success {})\n",
            b.name,
            fmt_success(best_success)
        );
    }
    println!("Expected shape (paper): a sweet spot below the maximum — shorter");
    println!("swaps add gates but free the tape scheduler (Fig. 5); too short");
    println!("and the extra swaps dominate. The best value is per-application.");
}
