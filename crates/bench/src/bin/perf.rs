//! Perf-trajectory tracker: times the two rewritten hot paths and emits
//! machine-readable records so speed regressions are visible across PRs.
//!
//! Outputs `BENCH_statevec.json` (gates/sec applying the 20-qubit QFT,
//! optimized vs the retained naive path) and `BENCH_router.json`
//! (routes/sec pushing the 16-qubit RCS benchmark through LinQ,
//! incremental vs the retained reference scorer) in the working
//! directory, plus a human-readable table on stdout.
//!
//! Run with: `cargo run --release -p tilt-bench --bin perf`

use std::time::Instant;
use tilt_benchmarks::qft::qft;
use tilt_benchmarks::rcs::random_circuit_sampling;
use tilt_compiler::decompose::decompose;
use tilt_compiler::mapping::InitialMapping;
use tilt_compiler::route::LinqConfig;
use tilt_compiler::{DeviceSpec, RouterKind};
use tilt_report::{Json, Table};
use tilt_statevec::State;

/// Median seconds per call over `samples` timed calls of `f`.
fn time_median(samples: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn main() {
    // --- state-vector kernels on the 20-qubit QFT ------------------------
    let circuit = qft(20);
    let gates = circuit.len() as f64;
    let probe = State::random(20, 1);
    let t_opt = time_median(5, || {
        std::hint::black_box(probe.clone().run(&circuit));
    });
    let t_naive = time_median(3, || {
        std::hint::black_box(probe.clone().run_naive(&circuit));
    });
    let statevec = Json::object()
        .set("benchmark", "qft20")
        .set("n_qubits", 20usize)
        .set("gates", gates)
        .set("optimized_secs", t_opt)
        .set("naive_secs", t_naive)
        .set("optimized_gates_per_sec", gates / t_opt)
        .set("naive_gates_per_sec", gates / t_naive)
        .set("speedup", t_naive / t_opt);
    std::fs::write("BENCH_statevec.json", statevec.render()).expect("write BENCH_statevec.json");

    // --- LinQ routing on the 16-qubit RCS benchmark ----------------------
    let native = decompose(&random_circuit_sampling(4, 4, 16, 7));
    let spec = DeviceSpec::new(16, 4).expect("valid device");
    let initial = InitialMapping::Identity.build(&native, 16);
    let route_time = |cfg: LinqConfig| {
        let kind = RouterKind::Linq(cfg);
        time_median(9, || {
            std::hint::black_box(kind.route(&native, spec, &initial).expect("rcs16 routes"));
        })
    };
    let t_inc = route_time(LinqConfig::default());
    let t_ref = route_time(LinqConfig {
        incremental: false,
        ..LinqConfig::default()
    });
    let router = Json::object()
        .set("benchmark", "rcs16_head4")
        .set("n_qubits", 16usize)
        .set("native_gates", native.len())
        .set("incremental_secs", t_inc)
        .set("reference_secs", t_ref)
        .set("incremental_routes_per_sec", 1.0 / t_inc)
        .set("reference_routes_per_sec", 1.0 / t_ref)
        .set("speedup", t_ref / t_inc);
    std::fs::write("BENCH_router.json", router.render()).expect("write BENCH_router.json");

    let mut table = Table::new(["hot path", "baseline", "optimized", "speedup"]);
    table.row([
        "statevec qft20".to_string(),
        format!("{:.0} gates/s", gates / t_naive),
        format!("{:.0} gates/s", gates / t_opt),
        format!("{:.2}x", t_naive / t_opt),
    ]);
    table.row([
        "LinQ rcs16".to_string(),
        format!("{:.0} routes/s", 1.0 / t_ref),
        format!("{:.0} routes/s", 1.0 / t_inc),
        format!("{:.2}x", t_ref / t_inc),
    ]);
    print!("{}", table.render());
    println!("\nwrote BENCH_statevec.json, BENCH_router.json");
}
