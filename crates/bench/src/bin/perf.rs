//! Perf-trajectory tracker: times the rewritten hot paths and emits
//! machine-readable records so speed regressions are visible across PRs
//! (the CI bench-regression gate diffs these against the previous run's
//! artifacts via the `bench_gate` binary).
//!
//! Outputs in the working directory:
//!
//! * `BENCH_statevec.json` — gates/sec applying the 20-qubit QFT
//!   (optimized vs the retained naive path) plus a permutation-heavy
//!   workload (raw 20-qubit `CNOT`/`SWAP`/`Toffoli` traffic) timed
//!   through the auto-parallel and forced-serial pipelines, and a
//!   `simd` record pricing the dispatched kernel tier against the
//!   forced-scalar fallback on the same QFT (~1.0× on scalar-only
//!   hosts, where the two tiers coincide).
//! * `BENCH_router.json` — routes/sec pushing the 16-qubit RCS
//!   benchmark through LinQ, incremental vs the retained reference
//!   scorer.
//! * `BENCH_scheduler.json` — moves/sec scheduling QFT/RCS/QAOA
//!   workloads through Algorithm 2: the default bound-pruned engine vs
//!   the retained rescan engine, plus the unpruned incremental engine
//!   (`full_argmax_secs`) isolating the lazy-argmax win.
//! * `BENCH_engine.json` — circuits/sec pushing a batch of small
//!   circuits through the `Engine` session API, batch/service mode
//!   (per-worker scratch reuse + pool fan-out) vs one `run` call per
//!   circuit.
//! * `BENCH_service.json` — requests/sec driving the same workload as
//!   JSON-lines wire requests through the `tilt serve` core (a
//!   self-driving client over in-memory buffers: QASM parse, protocol
//!   decode, windowed batch fan-out, response rendering), plus a
//!   `repeat` record pricing the compile cache: cold vs warm
//!   requests/sec on a duplicate-heavy stream (the acceptance floor is
//!   a 5× warm speedup), and an `overload` record driving a ~2×
//!   capacity flood with and without admission control (p99 latency,
//!   shed rate, and waves-to-completion for a client that honors
//!   `retry_after_ms` with exponential backoff + jitter).
//! * `BENCH_stabilizer.json` — a QEC-scale memory experiment the dense
//!   simulator cannot represent: the distance-251 repetition code
//!   (501 qubits, 10 syndrome rounds) through the raw tableau and
//!   end-to-end through the `Engine` on the stabilizer method, plus
//!   the statevec refusal for the same circuit as a negative control.
//! * `BENCH_compiler.json` — the streaming pipeline on a million-gate
//!   8×8 RCS workload: gates/sec through `run_streaming` vs the
//!   monolithic `run` on the same (materialized) circuit, plus the
//!   per-path peak-RSS ratio read from `VmHWM` with a `clear_refs`
//!   reset in between. Runs first so the allocator baseline is clean.
//!
//! Every record also carries `peak_rss_kb` (the process `VmHWM` at the
//! moment the record is written) and `threads`, so cross-run artifact
//! diffs can tell a slow runner from a fat one.
//!
//! Run with: `cargo run --release -p tilt-bench --bin perf`

use std::time::Instant;

use tilt_benchmarks::bv::bernstein_vazirani;
use tilt_benchmarks::qaoa::qaoa_maxcut;
use tilt_benchmarks::qec::repetition_code;
use tilt_benchmarks::qft::qft;
use tilt_benchmarks::rcs::random_circuit_sampling;
use tilt_benchmarks::stream::rcs_stream;
use tilt_circuit::{Circuit, Qubit};
use tilt_compiler::decompose::decompose;
use tilt_compiler::mapping::InitialMapping;
use tilt_compiler::route::LinqConfig;
use tilt_compiler::schedule::{schedule_with, ScheduleConfig, SchedulerKind};
use tilt_compiler::{DeviceSpec, RouterKind};
use tilt_engine::{
    Backend, Engine, NullSink, Service, SimMethod, TiltError, VerifyLevel, DEFAULT_STREAM_WINDOW,
};
use tilt_report::{Json, Table};
use tilt_statevec::{RunOptions, State};

/// Median seconds per call over `samples` timed calls of `f`.
fn time_median(samples: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn main() {
    let mut table = Table::new(["hot path", "baseline", "optimized", "speedup"]);

    // --- streaming vs monolithic compile on a million-gate circuit -------
    // First, before anything balloons the allocator: each path's peak
    // RSS is read from `VmHWM` with a best-effort `clear_refs` reset in
    // between, which only isolates the path's own footprint while the
    // process baseline is still small.
    let big_spec = DeviceSpec::new(64, 16).expect("valid device");
    let big_engine = Engine::tilt(big_spec);
    let (rows, cols, cycles, seed) = (8usize, 8usize, 11_000usize, 11u64);
    let hwm_resets = reset_peak_rss();
    let t0 = Instant::now();
    let mut null_sink = NullSink;
    let stream_outcome = big_engine
        .run_streaming(
            64,
            rcs_stream(rows, cols, cycles, seed),
            DEFAULT_STREAM_WINDOW,
            &mut null_sink,
        )
        .expect("million-gate stream compiles");
    let t_stream_big = t0.elapsed().as_secs_f64();
    let stream_peak_kb = peak_rss_kb();
    let million_gates = stream_outcome.input_gate_count as f64;

    reset_peak_rss();
    let big_circuit = Circuit::from_gates(64, rcs_stream(rows, cols, cycles, seed));
    let t0 = Instant::now();
    let big_mono = big_engine
        .run(&big_circuit)
        .expect("million-gate circuit compiles");
    let t_mono_big = t0.elapsed().as_secs_f64();
    let mono_peak_kb = peak_rss_kb();
    assert_eq!(
        big_mono.ln_success.to_bits(),
        stream_outcome.ln_success.to_bits(),
        "streaming is decision-identical to the monolithic compile"
    );
    drop(big_mono);
    drop(big_circuit);

    let compiler_record = Json::object()
        .set("benchmark", "rcs8x8_million_head16")
        .set("n_qubits", 64usize)
        .set("input_gates", million_gates)
        .set("window", DEFAULT_STREAM_WINDOW)
        .set("increments", stream_outcome.increments)
        .set("threads", rayon_threads())
        .set("kernel_tier", tilt_statevec::simd::tier_name())
        .set(
            "streaming",
            Json::object()
                .set("streaming_secs", t_stream_big)
                .set("monolithic_secs", t_mono_big)
                .set("streaming_gates_per_sec", million_gates / t_stream_big)
                .set("monolithic_gates_per_sec", million_gates / t_mono_big)
                // Streaming must not cost throughput: the acceptance
                // floor is 0.8× the monolithic rate (it measures ~2×).
                .set("throughput_ratio", t_mono_big / t_stream_big)
                .set("per_phase_peaks_isolated", hwm_resets)
                .set("streaming_peak_rss_kb", stream_peak_kb)
                .set("monolithic_peak_rss_kb", mono_peak_kb)
                .set("peak_memory_ratio", mono_peak_kb / stream_peak_kb),
        )
        .set("peak_rss_kb", peak_rss_kb());
    std::fs::write("BENCH_compiler.json", compiler_record.render())
        .expect("write BENCH_compiler.json");
    table.row([
        "compile rcs 1M gates".to_string(),
        format!("{:.0} gates/s mono", million_gates / t_mono_big),
        format!("{:.0} gates/s stream", million_gates / t_stream_big),
        format!(
            "{:.2}x speed, {:.1}x less peak RSS",
            t_mono_big / t_stream_big,
            mono_peak_kb / stream_peak_kb
        ),
    ]);

    // --- state-vector kernels on the 20-qubit QFT ------------------------
    let circuit = qft(20);
    let gates = circuit.len() as f64;
    let probe = State::random(20, 1);
    // Warm the allocator and caches before anything is timed: the very
    // first run pays first-touch page faults for the 16 MiB clone,
    // which would otherwise bias whichever tier is measured first.
    std::hint::black_box(probe.clone().run(&circuit));
    let t_opt = time_median(5, || {
        std::hint::black_box(probe.clone().run(&circuit));
    });
    // Dispatched kernel tier vs the forced-scalar fallback on the same
    // QFT, timed back to back so machine drift hits both tiers alike.
    // On hosts that resolve to the scalar tier the two runs take the
    // same code path, so the speedup sits at ~1.0 by construction.
    let t_scalar = {
        tilt_statevec::simd::force_scalar(true);
        let t = time_median(5, || {
            std::hint::black_box(probe.clone().run(&circuit));
        });
        tilt_statevec::simd::force_scalar(false);
        t
    };
    let t_naive = time_median(3, || {
        std::hint::black_box(probe.clone().run_naive(&circuit));
    });

    // Permutation-heavy workload: raw CNOT/SWAP/Toffoli traffic (the
    // Cuccaro adder's control structure *before* Clifford+T lowering),
    // which exercises the contiguous-run swap kernels and their
    // parallel splits. The forced-serial run is the single-core
    // baseline; on a single-core host the two coincide (the parallel
    // path must not regress).
    let perm = permutation_workload(20);
    let perm_gates = perm.len() as f64;
    let perm_probe = State::random(20, 2);
    let t_perm_par = time_median(5, || {
        std::hint::black_box(perm_probe.clone().run(&perm));
    });
    let t_perm_serial = time_median(5, || {
        std::hint::black_box(
            perm_probe
                .clone()
                .run_with(&perm, RunOptions::serial_unfused()),
        );
    });

    let statevec = Json::object()
        .set("benchmark", "qft20")
        .set("n_qubits", 20usize)
        .set("gates", gates)
        .set("optimized_secs", t_opt)
        .set("naive_secs", t_naive)
        .set("optimized_gates_per_sec", gates / t_opt)
        .set("naive_gates_per_sec", gates / t_naive)
        .set("speedup", t_naive / t_opt)
        .set("threads", rayon_threads())
        .set("kernel_tier", tilt_statevec::simd::tier_name())
        .set("peak_rss_kb", peak_rss_kb())
        .set(
            "simd",
            Json::object()
                .set("benchmark", "qft20_tier")
                .set("kernel_tier", tilt_statevec::simd::tier_name())
                .set("simd_secs", t_opt)
                .set("scalar_secs", t_scalar)
                .set("simd_gates_per_sec", gates / t_opt)
                .set("scalar_gates_per_sec", gates / t_scalar)
                .set("speedup", t_scalar / t_opt),
        )
        .set(
            "permutation",
            Json::object()
                .set("benchmark", "perm20")
                .set("n_qubits", 20usize)
                .set("gates", perm_gates)
                .set("parallel_secs", t_perm_par)
                .set("serial_secs", t_perm_serial)
                .set("parallel_gates_per_sec", perm_gates / t_perm_par)
                .set("serial_gates_per_sec", perm_gates / t_perm_serial)
                .set("multicore_speedup", t_perm_serial / t_perm_par),
        );
    std::fs::write("BENCH_statevec.json", statevec.render()).expect("write BENCH_statevec.json");
    table.row([
        "statevec qft20".to_string(),
        format!("{:.0} gates/s", gates / t_naive),
        format!("{:.0} gates/s", gates / t_opt),
        format!("{:.2}x", t_naive / t_opt),
    ]);
    table.row([
        "statevec simd qft20".to_string(),
        format!("{:.0} gates/s", gates / t_scalar),
        format!("{:.0} gates/s", gates / t_opt),
        format!("{:.2}x", t_scalar / t_opt),
    ]);
    table.row([
        "statevec perm20".to_string(),
        format!("{:.0} gates/s", perm_gates / t_perm_serial),
        format!("{:.0} gates/s", perm_gates / t_perm_par),
        format!("{:.2}x", t_perm_serial / t_perm_par),
    ]);

    // --- LinQ routing on the 16-qubit RCS benchmark ----------------------
    let native = decompose(&random_circuit_sampling(4, 4, 16, 7));
    let spec = DeviceSpec::new(16, 4).expect("valid device");
    let initial = InitialMapping::Identity.build(&native, 16);
    let route_time = |cfg: LinqConfig| {
        let kind = RouterKind::Linq(cfg);
        time_median(9, || {
            std::hint::black_box(kind.route(&native, spec, &initial).expect("rcs16 routes"));
        })
    };
    let t_inc = route_time(LinqConfig::default());
    let t_ref = route_time(LinqConfig {
        incremental: false,
        ..LinqConfig::default()
    });
    let router = Json::object()
        .set("benchmark", "rcs16_head4")
        .set("n_qubits", 16usize)
        .set("native_gates", native.len())
        .set("incremental_secs", t_inc)
        .set("reference_secs", t_ref)
        .set("incremental_routes_per_sec", 1.0 / t_inc)
        .set("reference_routes_per_sec", 1.0 / t_ref)
        .set("speedup", t_ref / t_inc)
        .set("threads", rayon_threads())
        .set("kernel_tier", tilt_statevec::simd::tier_name())
        .set("peak_rss_kb", peak_rss_kb());
    std::fs::write("BENCH_router.json", router.render()).expect("write BENCH_router.json");
    table.row([
        "LinQ rcs16".to_string(),
        format!("{:.0} routes/s", 1.0 / t_ref),
        format!("{:.0} routes/s", 1.0 / t_inc),
        format!("{:.2}x", t_ref / t_inc),
    ]);

    // --- Algorithm 2 scheduling, incremental vs rescan --------------------
    let workloads: [(&str, Circuit, usize); 4] = [
        ("qft24_head8", qft(24), 8),
        ("qft32_head8", qft(32), 8),
        ("rcs16_head4", random_circuit_sampling(4, 4, 16, 7), 4),
        ("qaoa24_head6", qaoa_maxcut(24, 2, 5), 6),
    ];
    let mut records: Vec<Json> = Vec::new();
    for (name, circuit, head) in workloads {
        let spec = DeviceSpec::new(circuit.n_qubits(), head).expect("valid device");
        let native = decompose(&circuit);
        let initial = InitialMapping::Identity.build(&native, spec.n_ions());
        let routed = RouterKind::default()
            .route(&native, spec, &initial)
            .expect("perf workloads route");
        let lowered = decompose(&routed.circuit);
        let kind = SchedulerKind::GreedyMaxExecutable;
        // Both engines produce this exact program (decision-identical);
        // schedule once for the counts, then time the engines.
        let program = schedule_with(&lowered, spec, ScheduleConfig::new(kind));
        let moves = program.move_count() as f64;
        let t_fast = time_median(5, || {
            std::hint::black_box(schedule_with(&lowered, spec, ScheduleConfig::new(kind)));
        });
        let t_full = time_median(3, || {
            std::hint::black_box(schedule_with(
                &lowered,
                spec,
                ScheduleConfig::unpruned(kind),
            ));
        });
        let t_slow = time_median(3, || {
            std::hint::black_box(schedule_with(&lowered, spec, ScheduleConfig::rescan(kind)));
        });
        records.push(
            Json::object()
                .set("benchmark", name)
                .set("n_qubits", circuit.n_qubits())
                .set("scheduled_gates", program.gate_count())
                .set("moves", moves)
                .set("incremental_secs", t_fast)
                .set("full_argmax_secs", t_full)
                .set("rescan_secs", t_slow)
                .set("incremental_moves_per_sec", moves / t_fast)
                .set("rescan_moves_per_sec", moves / t_slow)
                .set("speedup", t_slow / t_fast)
                .set("pruned_speedup", t_full / t_fast),
        );
        table.row([
            format!("scheduler {name}"),
            format!("{:.0} moves/s", moves / t_slow),
            format!("{:.0} moves/s", moves / t_fast),
            format!("{:.2}x", t_slow / t_fast),
        ]);
        table.row([
            format!("sched {name} argmax"),
            format!("{:.0} moves/s", moves / t_full),
            format!("{:.0} moves/s", moves / t_fast),
            format!("{:.2}x", t_full / t_fast),
        ]);
    }
    let scheduler = Json::object()
        .set("threads", rayon_threads())
        .set("kernel_tier", tilt_statevec::simd::tier_name())
        .set("peak_rss_kb", peak_rss_kb())
        .set("workloads", Json::Arr(records));
    std::fs::write("BENCH_scheduler.json", scheduler.render()).expect("write BENCH_scheduler.json");

    // --- Engine batch/service mode vs one run() per circuit --------------
    // Many small circuits is the service-mode case the ROADMAP targets:
    // per-circuit setup (transient compile buffers) dominates, so the
    // batch path's per-worker scratch reuse plus pool fan-out should
    // beat a loop of single runs.
    let circuits = engine_workload();
    let n_circuits = circuits.len() as f64;
    let engine = Engine::tilt(DeviceSpec::new(16, 4).expect("valid device"));
    let t_single = time_median(5, || {
        for c in &circuits {
            std::hint::black_box(engine.run(c).expect("workload compiles"));
        }
    });
    let t_batch = time_median(5, || {
        std::hint::black_box(engine.run_batch(circuits.iter().cloned()));
    });
    // Verifier overhead: the same per-circuit loop with the static rule
    // packs on (strict). The delta prices `EngineBuilder::verify` for
    // service operators deciding whether to leave it enabled.
    let engine_verified = Engine::builder()
        .backend(Backend::Tilt(DeviceSpec::new(16, 4).expect("valid device")))
        .verify(VerifyLevel::Strict)
        .build()
        .expect("engine builds");
    let t_verified = time_median(5, || {
        for c in &circuits {
            std::hint::black_box(engine_verified.run(c).expect("workload verifies clean"));
        }
    });
    let engine_record = Json::object()
        .set("benchmark", "small_circuit_batch")
        .set("circuits", n_circuits)
        .set("n_qubits", 16usize)
        .set("single_secs", t_single)
        .set("batch_secs", t_batch)
        .set("single_circuits_per_sec", n_circuits / t_single)
        .set("batch_circuits_per_sec", n_circuits / t_batch)
        .set("batch_speedup", t_single / t_batch)
        .set("threads", rayon_threads())
        .set("kernel_tier", tilt_statevec::simd::tier_name())
        .set("peak_rss_kb", peak_rss_kb())
        .set(
            "verify",
            Json::object()
                .set("strict_secs", t_verified)
                .set("strict_circuits_per_sec", n_circuits / t_verified)
                .set("overhead_ratio", t_verified / t_single),
        );
    std::fs::write("BENCH_engine.json", engine_record.render()).expect("write BENCH_engine.json");
    table.row([
        "engine batch x120".to_string(),
        format!("{:.0} circuits/s", n_circuits / t_single),
        format!("{:.0} circuits/s", n_circuits / t_batch),
        format!("{:.2}x", t_single / t_batch),
    ]);

    // --- `tilt serve` core: the same workload as wire requests ----------
    // The self-driving client: render every circuit as a JSON-lines run
    // request, stream the whole batch through one in-memory service
    // loop, and count responses/sec. This prices the full service path
    // — QASM parse, protocol decode, windowed batch fan-out, response
    // rendering — against the raw `run_batch` number above.
    let requests: String = circuits
        .iter()
        .enumerate()
        .map(|(k, c)| {
            let mut line = Json::object()
                .set("id", k)
                .set("qasm", tilt_circuit::qasm::to_qasm(c))
                .render();
            line.push('\n');
            line
        })
        .collect();
    let service_builder =
        Engine::builder().backend(Backend::Tilt(DeviceSpec::new(16, 4).expect("valid device")));
    let mut window = 0usize;
    let t_serve = time_median(5, || {
        let mut service = Service::new(service_builder.clone()).expect("service builds");
        window = service.window();
        let mut out = Vec::with_capacity(requests.len());
        let summary = service
            .serve(std::io::Cursor::new(requests.as_bytes()), &mut out, None)
            .expect("in-memory service loop cannot fail on I/O");
        assert_eq!(summary.stats.errors, 0, "workload requests all compile");
        std::hint::black_box(out);
    });
    // --- compile cache: warm vs cold on a duplicate-heavy stream ---------
    // The service-traffic shape the cache targets: a small set of
    // distinct circuits hammered repeatedly (load generators, retry
    // storms, parameter sweeps re-submitting the base circuit). The
    // circuits are QAOA instances deep enough that routing+scheduling
    // dominates protocol cost — the regime the cache is for (on
    // single-gate toys, parse cost bounds the win). Cold = a fresh
    // service compiling each distinct circuit once; warm = the same
    // service re-serving the full duplicate stream from cache.
    let distinct: Vec<Circuit> = (0..12).map(|k| qaoa_maxcut(16, 4, 1000 + k)).collect();
    let as_requests = |circuits: &[Circuit], repeats: usize| -> String {
        let mut text = String::new();
        for rep in 0..repeats {
            for (k, c) in circuits.iter().enumerate() {
                let mut line = Json::object()
                    .set("id", rep * circuits.len() + k)
                    .set("qasm", tilt_circuit::qasm::to_qasm(c))
                    .render();
                line.push('\n');
                text.push_str(&line);
            }
        }
        text
    };
    let cold_requests = as_requests(&distinct, 1);
    let warm_requests = as_requests(&distinct, 10);
    let n_cold = distinct.len() as f64;
    let n_warm = (distinct.len() * 10) as f64;
    let t_cold = time_median(5, || {
        // A fresh service (and fresh cache) every sample: every request
        // is a genuine compile.
        let mut service = Service::new(service_builder.clone()).expect("service builds");
        let mut out = Vec::new();
        let summary = service
            .serve(
                std::io::Cursor::new(cold_requests.as_bytes()),
                &mut out,
                None,
            )
            .expect("in-memory service loop cannot fail on I/O");
        assert_eq!(summary.cache.hits, 0, "cold pass must not hit");
        std::hint::black_box(out);
    });
    let mut warm_service = Service::new(service_builder.clone()).expect("service builds");
    let mut primed = Vec::new();
    warm_service
        .serve(
            std::io::Cursor::new(cold_requests.as_bytes()),
            &mut primed,
            None,
        )
        .expect("priming pass");
    let t_warm = time_median(5, || {
        let mut out = Vec::new();
        let summary = warm_service
            .serve(
                std::io::Cursor::new(warm_requests.as_bytes()),
                &mut out,
                None,
            )
            .expect("in-memory service loop cannot fail on I/O");
        assert_eq!(summary.stats.errors, 0, "warm requests all answer");
        std::hint::black_box(out);
    });
    let cold_rps = n_cold / t_cold;
    let warm_rps = n_warm / t_warm;

    // --- overload: a ~2× capacity flood, with vs without admission -------
    // The shed/retry client the engine README documents: submit a wave,
    // keep what was admitted, and resubmit every shed request after
    // honoring its `retry_after_ms` hint with exponential backoff plus
    // deterministic jitter. "Capacity" is the admission budget; the
    // flood is twice that, and the whole flood is buffered concurrently
    // (window = flood size), so roughly half of the first wave sheds.
    const OVERLOAD_BUDGET: usize = 8;
    let flood_lines: Vec<String> = (0..OVERLOAD_BUDGET * 2)
        .map(|k| {
            Json::object()
                .set("id", k)
                .set(
                    "qasm",
                    tilt_circuit::qasm::to_qasm(&qaoa_maxcut(16, 1, 5_000 + k as u64)),
                )
                .render()
        })
        .collect();
    // Drives the flood to completion; returns (client wall seconds,
    // waves, sheds observed, requests submitted, final summary).
    let run_overload_client =
        |mut service: Service| -> (f64, usize, u64, u64, tilt_engine::ServiceSummary) {
            let t0 = Instant::now();
            let mut outstanding: Vec<usize> = (0..flood_lines.len()).collect();
            let mut attempt = 0u32;
            let mut waves = 0usize;
            let mut sheds = 0u64;
            let mut submitted = 0u64;
            let mut summary = None;
            while !outstanding.is_empty() {
                submitted += outstanding.len() as u64;
                let input: String = outstanding
                    .iter()
                    .map(|&k| flood_lines[k].clone() + "\n")
                    .collect();
                let mut out = Vec::new();
                let s = service
                    .serve(std::io::Cursor::new(input.as_bytes()), &mut out, None)
                    .expect("in-memory service loop cannot fail on I/O");
                let mut retry: Vec<usize> = Vec::new();
                let mut backoff_ms = 0u64;
                for line in String::from_utf8(out).expect("utf-8 responses").lines() {
                    let resp = Json::parse(line).expect("response parses");
                    let id = resp.get("id").and_then(Json::as_f64).expect("echoed id") as usize;
                    if resp.get("ok") == Some(&Json::Bool(true)) {
                        continue;
                    }
                    let error = resp.get("error").expect("structured error");
                    assert_eq!(
                        error.get("kind").and_then(Json::as_str),
                        Some("overloaded"),
                        "the flood compiles; only admission sheds"
                    );
                    let hint = error
                        .get("retry_after_ms")
                        .and_then(Json::as_f64)
                        .expect("overloaded responses carry retry_after_ms")
                        as u64;
                    // Exponential backoff on the hint plus deterministic
                    // jitter, so a synchronized retry storm decorrelates.
                    let jitter = (id as u64 * 13 + attempt as u64 * 7) % (hint / 2 + 1);
                    backoff_ms = backoff_ms.max(hint * (1u64 << attempt.min(4)) + jitter);
                    retry.push(id);
                }
                sheds += retry.len() as u64;
                waves += 1;
                summary = Some(s);
                if !retry.is_empty() {
                    std::thread::sleep(std::time::Duration::from_millis(backoff_ms));
                    attempt += 1;
                }
                outstanding = retry;
            }
            (
                t0.elapsed().as_secs_f64(),
                waves,
                sheds,
                submitted,
                summary.expect("at least one wave"),
            )
        };
    let n_flood = flood_lines.len();
    let admission = std::sync::Arc::new(tilt_engine::AdmissionControl::new(
        OVERLOAD_BUDGET,
        usize::MAX,
    ));
    let (t_admit, admit_waves, admit_sheds, admit_submitted, admit_summary) = run_overload_client(
        Service::new(service_builder.clone())
            .expect("service builds")
            .with_admission(admission)
            .with_window(n_flood),
    );
    let (t_open, open_waves, open_sheds, _, open_summary) = run_overload_client(
        Service::new(service_builder.clone())
            .expect("service builds")
            .with_window(n_flood),
    );
    assert_eq!(open_sheds, 0, "no admission control, nothing sheds");
    assert_eq!(open_waves, 1);
    assert_eq!(admit_summary.stats.shed_overloaded, admit_sheds);
    let admit_shed_rate = admit_sheds as f64 / admit_submitted as f64;

    let service_record = Json::object()
        .set("benchmark", "service_jsonlines")
        .set("requests", n_circuits)
        .set("n_qubits", 16usize)
        .set("window", window)
        .set("serve_secs", t_serve)
        .set("requests_per_sec", n_circuits / t_serve)
        .set("batch_secs", t_batch)
        .set("protocol_overhead", t_serve / t_batch)
        .set("threads", rayon_threads())
        .set("kernel_tier", tilt_statevec::simd::tier_name())
        .set("peak_rss_kb", peak_rss_kb())
        .set(
            "repeat",
            Json::object()
                .set("benchmark", "service_repeat_stream")
                .set("distinct_circuits", distinct.len())
                .set("warm_requests", n_warm)
                .set("cold_secs", t_cold)
                .set("warm_secs", t_warm)
                .set("cold_requests_per_sec", cold_rps)
                .set("warm_requests_per_sec", warm_rps)
                .set("warm_speedup", warm_rps / cold_rps),
        )
        .set(
            "overload",
            Json::object()
                .set("benchmark", "service_overload_2x")
                .set("flood_requests", n_flood)
                .set("budget_requests", OVERLOAD_BUDGET)
                .set(
                    "admission",
                    Json::object()
                        .set("waves", admit_waves)
                        .set("shed", admit_sheds)
                        .set("shed_rate", admit_shed_rate)
                        .set("p99_latency_us", admit_summary.stats.p99_us())
                        .set("client_secs", t_admit)
                        .set("requests_per_sec", n_flood as f64 / t_admit),
                )
                .set(
                    "open_loop",
                    Json::object()
                        .set("waves", open_waves)
                        .set("shed", open_sheds)
                        .set("shed_rate", 0.0)
                        .set("p99_latency_us", open_summary.stats.p99_us())
                        .set("client_secs", t_open)
                        .set("requests_per_sec", n_flood as f64 / t_open),
                ),
        );
    std::fs::write("BENCH_service.json", service_record.render())
        .expect("write BENCH_service.json");
    table.row([
        "serve x120 (wire)".to_string(),
        format!("{:.0} circuits/s", n_circuits / t_batch),
        format!("{:.0} req/s", n_circuits / t_serve),
        format!("{:.2}x overhead", t_serve / t_batch),
    ]);
    table.row([
        "serve warm cache".to_string(),
        format!("{cold_rps:.0} req/s cold"),
        format!("{warm_rps:.0} req/s warm"),
        format!("{:.2}x", warm_rps / cold_rps),
    ]);
    table.row([
        "serve 2x overload".to_string(),
        format!("p99 {} µs open", open_summary.stats.p99_us()),
        format!(
            "p99 {} µs, {:.0}% shed",
            admit_summary.stats.p99_us(),
            100.0 * admit_shed_rate
        ),
        format!("{admit_waves} waves"),
    ]);

    // --- stabilizer: QEC-scale memory experiment -------------------------
    // The distance-251 repetition code: 501 qubits, 10 syndrome rounds,
    // 2751 mid-circuit + final measurements. A dense state vector for
    // this circuit would need 2^501 amplitudes, so the statevec method
    // refusing it is part of the record (negative control); the tableau
    // runs it in milliseconds. On the all-zero initial state every
    // syndrome and every data readout is deterministically 0, which the
    // record asserts — a wrong update rule would show up right here.
    let qec = repetition_code(251, 10);
    let qec_meas = qec.stats().measurements as f64;
    let tableau_run = tilt_stabilizer::run(&qec, 7).expect("repetition code is Clifford");
    assert_eq!(
        tableau_run.deterministic_measurements,
        tableau_run.outcomes.len(),
        "all-zero-state syndrome extraction is fully deterministic"
    );
    assert!(
        tableau_run.outcomes.iter().all(|&b| !b),
        "a quiet memory experiment reads back all zeros"
    );
    let t_tableau = time_median(5, || {
        std::hint::black_box(tilt_stabilizer::run(&qec, 7).expect("repetition code is Clifford"));
    });
    // End-to-end through the session API: compile for a 501-ion tape
    // (the interleaved layout keeps every check span-1, so routing adds
    // nothing) and simulate on the stabilizer method. A fresh engine
    // per sample keeps the compile cache from hiding the compile cost.
    let qec_spec = DeviceSpec::new(qec.n_qubits(), 16).expect("valid 501-ion device");
    let t_engine = time_median(3, || {
        let engine = Engine::builder()
            .backend(Backend::Tilt(qec_spec))
            .simulate(SimMethod::Stabilizer)
            .build()
            .expect("engine builds");
        let report = engine
            .run(&qec)
            .expect("QEC workload compiles and simulates");
        let sim = report.sim.expect("simulation was requested");
        assert_eq!(sim.measurements as f64, qec_meas);
        std::hint::black_box(sim);
    });
    let statevec_refusal = {
        let engine = Engine::builder()
            .backend(Backend::Tilt(qec_spec))
            .simulate(SimMethod::Statevec)
            .build()
            .expect("engine builds");
        match engine.run(&qec) {
            Err(TiltError::Simulation { reason }) => reason,
            other => panic!("501 qubits must refuse the dense method, got {other:?}"),
        }
    };
    let stabilizer_record = Json::object()
        .set("benchmark", "repetition_code_d251_r10")
        .set("n_qubits", qec.n_qubits())
        .set("distance", 251usize)
        .set("rounds", 10usize)
        .set("gates", qec.len())
        .set("measurements", qec_meas)
        .set(
            "deterministic_measurements",
            tableau_run.deterministic_measurements,
        )
        .set("random_measurements", tableau_run.random_measurements)
        .set("tableau_secs", t_tableau)
        .set("tableau_measurements_per_sec", qec_meas / t_tableau)
        .set("engine_secs", t_engine)
        .set("engine_measurements_per_sec", qec_meas / t_engine)
        .set("statevec_representable", false)
        .set("statevec_refusal", statevec_refusal.as_str())
        .set("threads", rayon_threads())
        .set("kernel_tier", tilt_statevec::simd::tier_name())
        .set("peak_rss_kb", peak_rss_kb());
    std::fs::write("BENCH_stabilizer.json", stabilizer_record.render())
        .expect("write BENCH_stabilizer.json");
    table.row([
        "stabilizer d251 r10".to_string(),
        "2^501 amplitudes (refused)".to_string(),
        format!("{:.0} meas/s", qec_meas / t_tableau),
        format!("{t_engine:.3}s end-to-end"),
    ]);

    print!("{}", table.render());
    println!(
        "\nwrote BENCH_compiler.json, BENCH_statevec.json, BENCH_router.json, BENCH_scheduler.json, BENCH_engine.json, BENCH_service.json, BENCH_stabilizer.json"
    );
}

/// Peak resident set size of this process in KB (`VmHWM` from
/// `/proc/self/status`), `0.0` where procfs is unavailable.
fn peak_rss_kb() -> f64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|kb| kb.parse().ok())
        })
        .unwrap_or(0.0)
}

/// Best-effort reset of the `VmHWM` high-water mark (Linux
/// `clear_refs`), so consecutive phases can each read their own peak.
/// Returns whether the reset took; when it does not, the recorded
/// per-phase peaks are monotonic upper bounds instead.
fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

/// 120 small mixed circuits (GHZ ladders, BV, 1-layer QAOA) on one
/// 16-ion device — the many-small-circuits service-mode workload.
fn engine_workload() -> Vec<Circuit> {
    (0..120)
        .map(|k| match k % 3 {
            0 => {
                let mut c = Circuit::new(16);
                c.h(Qubit(0));
                for i in 1..16 {
                    c.cnot(Qubit(i - 1), Qubit(i));
                }
                c
            }
            1 => bernstein_vazirani(12, &[true; 11]),
            _ => qaoa_maxcut(16, 1, k as u64),
        })
        .collect()
}

/// Parallelism the statevector kernels saw (records context with the
/// multicore numbers).
fn rayon_threads() -> usize {
    rayon::current_num_threads()
}

/// A pure permutation circuit on `n` qubits: MAJ/UMA-style ripples of
/// raw `CNOT`/`Toffoli` plus long-range `SWAP`s, with no single-qubit
/// rotations to fuse into dense blocks.
fn permutation_workload(n: usize) -> Circuit {
    use tilt_circuit::Qubit;
    let mut c = Circuit::new(n);
    for round in 0..6 {
        for i in 0..n - 2 {
            c.cnot(Qubit(i + 2), Qubit(i + 1));
            c.toffoli(Qubit(i), Qubit(i + 1), Qubit(i + 2));
        }
        for i in 0..n / 2 {
            c.swap(Qubit(i), Qubit(n - 1 - i));
        }
        c.cnot(Qubit((round * 3) % n), Qubit((round * 3 + n / 2) % n));
    }
    c
}
