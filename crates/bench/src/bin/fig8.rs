//! Regenerates **Fig. 8** of the TILT paper: application success rates on
//! TILT (head 16 and 32) vs the ideal trapped-ion device vs the best QCCD
//! configuration, plus the headline "up to X× / Y× on average" summary of
//! §I and §VI-B.
//!
//! Run with: `cargo run --release -p bench --bin fig8`

use bench::{evaluate_qccd_best, evaluate_tilt};
use tilt_benchmarks::paper_suite;
use tilt_compiler::RouterKind;
use tilt_report::{fmt_success, Table};
use tilt_sim::{estimate_ideal_success, GateTimeModel, NoiseModel};

fn main() {
    let noise = NoiseModel::default();
    let times = GateTimeModel::default();

    let mut table = Table::new([
        "Application",
        "TILT head 16",
        "TILT head 32",
        "Ideal TI",
        "QCCD (best)",
        "best trap",
        "TILT16/QCCD",
        "TILT32/QCCD",
    ]);

    let mut ratios16 = Vec::new();
    let mut ratios32 = Vec::new();
    for b in paper_suite() {
        let t16 = evaluate_tilt(&b.circuit, 16, RouterKind::default());
        let t32 = evaluate_tilt(&b.circuit, 32, RouterKind::default());
        let ideal = estimate_ideal_success(&b.circuit, &noise, &times);
        let (qccd, trap) = evaluate_qccd_best(&b.circuit);
        let r16 = t16.success.success / qccd.success;
        let r32 = t32.success.success / qccd.success;
        ratios16.push(r16);
        ratios32.push(r32);
        table.row([
            b.name.to_string(),
            fmt_success(t16.success.success),
            fmt_success(t32.success.success),
            fmt_success(ideal.success),
            fmt_success(qccd.success),
            trap.to_string(),
            format!("{r16:.2}"),
            format!("{r32:.2}"),
        ]);
    }

    println!("Fig. 8: success rates across device configurations\n");
    println!("{}", table.render());
    bench::maybe_print_csv(&table);

    let max32 = ratios32.iter().cloned().fold(0.0f64, f64::max);
    let mean32 = ratios32.iter().sum::<f64>() / ratios32.len() as f64;
    let max16 = ratios16.iter().cloned().fold(0.0f64, f64::max);
    let mean16 = ratios16.iter().sum::<f64>() / ratios16.len() as f64;
    println!("headline summary (paper: up to 4.35x, 1.95x on average):");
    println!("  head 32: up to {max32:.2}x over QCCD, {mean32:.2}x on average");
    println!("  head 16: up to {max16:.2}x over QCCD, {mean16:.2}x on average");
    println!();
    println!("Expected shape (paper): ADDER/BV comparable across architectures;");
    println!("QAOA/RCS clearly favour TILT; QFT favours QCCD (long-distance");
    println!("traffic costs TILT hundreds of heating tape moves); Ideal TI");
    println!("upper-bounds everything.");
}
