//! The §VII "Trapped-Ion Scaling" experiments the paper discusses but
//! does not evaluate:
//!
//! 1. **Sympathetic cooling on TILT** — dual-species chains re-cool the
//!    tape during execution, recovering the success the shuttling heat
//!    costs (the paper: "would reduce the heating due to shuttling and
//!    allow for longer circuits").
//! 2. **Modular TILT (MUSIQC-style ELUs)** — wide programs split over
//!    photonically-linked TILT modules: shorter chains heat less per move
//!    (`k ∝ √n`) but every cross-module gate costs an EPR pair.
//!
//! Run with: `cargo run --release -p bench --bin scaling`

use tilt_benchmarks::{qaoa::qaoa_maxcut, qft::qft64};
use tilt_compiler::{Compiler, DeviceSpec};
use tilt_report::{fmt_success, Table};
use tilt_scale::{compile_scaled, estimate_scaled, ScaleSpec};
use tilt_sim::{
    estimate_success, estimate_success_with_cooling, CoolingPolicy, GateTimeModel, NoiseModel,
};

fn main() {
    cooling_study();
    modular_study();
}

fn cooling_study() {
    println!("§VII study 1: sympathetic cooling on TILT (QFT-64, head 16)\n");
    let out = Compiler::new(DeviceSpec::tilt64(16))
        .compile(&qft64())
        .expect("QFT compiles");
    let noise = NoiseModel::default();
    let times = GateTimeModel::default();

    let mut table = Table::new(["cooling policy", "rounds", "final quanta", "success"]);
    let policies: Vec<(String, CoolingPolicy)> = vec![
        ("none (paper's TILT)".into(), CoolingPolicy::never()),
        ("threshold 10 quanta".into(), CoolingPolicy::threshold(10.0)),
        ("threshold 2 quanta".into(), CoolingPolicy::threshold(2.0)),
        ("every 8 moves".into(), CoolingPolicy::periodic(8)),
        ("every move".into(), CoolingPolicy::periodic(1)),
    ];
    for (label, policy) in policies {
        let r = estimate_success_with_cooling(&out.program, &noise, &times, &policy);
        table.row([
            label,
            r.cooling_rounds.to_string(),
            format!("{:.1}", r.report.final_quanta),
            fmt_success(r.report.success),
        ]);
    }
    println!("{}", table.render());
    println!("Cooling recovers the orders of magnitude that 200+ tape moves cost");
    println!("QFT — the paper's \"longer circuits\" claim, quantified.\n");
}

fn modular_study() {
    println!("§VII study 2: modular TILT via photonic interconnects (QAOA-128)\n");
    let circuit = qaoa_maxcut(128, 20, 7);
    let noise = NoiseModel::default();
    let times = GateTimeModel::default();

    let mut table = Table::new([
        "configuration",
        "chains",
        "EPR pairs",
        "total moves",
        "success",
    ]);

    // Monolithic: one 128-ion tape, head 16.
    let mono = Compiler::new(DeviceSpec::new(128, 16).expect("valid spec"))
        .compile(&circuit)
        .expect("monolithic compiles");
    let mono_s = estimate_success(&mono.program, &noise, &times);
    table.row([
        "monolithic 128-ion tape".to_string(),
        "1×128".to_string(),
        "0".to_string(),
        mono.report.move_count.to_string(),
        fmt_success(mono_s.success),
    ]);

    // Modular: ELUs of 66 (2×64 data) and 34 (4×32 data) ions.
    for ions_per_elu in [66usize, 34, 18] {
        let spec = ScaleSpec::new(ions_per_elu, 16.min(ions_per_elu)).expect("valid ELU");
        let program = compile_scaled(&circuit, &spec).expect("modular compiles");
        let r = estimate_scaled(&program, &noise, &times);
        table.row([
            format!("ELUs of {ions_per_elu} ions"),
            format!("{}×{}", program.elu_outputs.len(), ions_per_elu),
            r.remote_gates.to_string(),
            r.total_moves.to_string(),
            fmt_success(r.success),
        ]);
    }
    println!("{}", table.render());
    println!("Shorter chains heat less per move and parallelize tape motion, but");
    println!("each boundary interaction pays the ~0.95-fidelity EPR pair — the");
    println!("modularity trade-off MUSIQC-style proposals must balance.");
}
