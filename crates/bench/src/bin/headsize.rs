//! Head-size design sweep.
//!
//! The paper's introduction pins the head at 32 lasers (the size of
//! commodity AOMs) and evaluates 16 and 32. This harness sweeps the head
//! size across the whole suite to expose the diminishing-returns curve
//! behind that design choice: how much success rate does each extra laser
//! buy, per application class?
//!
//! Run with: `cargo run --release -p bench --bin headsize`

use bench::evaluate_tilt;
use tilt_benchmarks::paper_suite;
use tilt_compiler::RouterKind;
use tilt_report::{fmt_success, Table};

const HEADS: [usize; 6] = [8, 12, 16, 24, 32, 48];

fn main() {
    let mut table = Table::new([
        "Application",
        "head 8",
        "head 12",
        "head 16",
        "head 24",
        "head 32",
        "head 48",
    ]);
    for b in paper_suite() {
        let mut cells = vec![b.name.to_string()];
        for head in HEADS {
            let eval = evaluate_tilt(&b.circuit, head, RouterKind::default());
            cells.push(fmt_success(eval.success.success));
        }
        table.row(cells);
    }
    println!("Success rate vs head size (LinQ defaults)\n");
    println!("{}", table.render());
    bench::maybe_print_csv(&table);
    println!("Nearest-neighbour apps saturate early (a 16-laser head already");
    println!("covers their traffic); long-distance apps keep gaining until the");
    println!("head covers most of the tape — the commodity-AOM limit of 32");
    println!("lasers (§I) is a genuine constraint only for the latter class.");
}
