//! Regenerates **Table II** of the TILT paper: the benchmark suite with
//! qubit counts, two-qubit gate counts, and communication patterns.
//!
//! Run with: `cargo run --release -p bench --bin table2`

use tilt_benchmarks::paper_suite;
use tilt_report::Table;

fn main() {
    let mut table = Table::new([
        "Application",
        "Qubits",
        "2Q Gates (ours)",
        "2Q Gates (paper)",
        "Depth",
        "Communication",
    ]);
    for b in paper_suite() {
        let stats = b.circuit.stats();
        table.row([
            b.name.to_string(),
            stats.n_qubits.to_string(),
            stats.two_qubit_gates.to_string(),
            b.paper_two_qubit_gates.to_string(),
            stats.depth.to_string(),
            b.communication.to_string(),
        ]);
    }
    println!("Table II: list of benchmarks\n");
    println!("{}", table.render());
    bench::maybe_print_csv(&table);
    println!("Gate-count deltas vs the paper come from Toffoli/oracle lowering");
    println!("conventions; see EXPERIMENTS.md for the per-benchmark accounting.");
}
