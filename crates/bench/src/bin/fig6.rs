//! Regenerates **Fig. 6** of the TILT paper: LinQ swap insertion vs the
//! Qiskit-StochasticSwap-style baseline on the long-distance benchmarks
//! (BV, QFT, SQRT) at head size 16.
//!
//! * Fig. 6a — opposing-swap ratio (higher is better)
//! * Fig. 6b — swap count (lower is better)
//! * Fig. 6c — tape-move count (lower is better)
//! * Fig. 6d–f — success rates per application
//!
//! Run with: `cargo run --release -p bench --bin fig6`

use bench::evaluate_tilt;
use tilt_benchmarks::suite::long_distance_suite;
use tilt_compiler::RouterKind;
use tilt_report::{fmt_success, Table};

const HEAD: usize = 16;

fn main() {
    let mut table = Table::new([
        "Application",
        "Router",
        "OpposingRatio (6a)",
        "#Swaps (6b)",
        "#Moves (6c)",
        "Success (6d-f)",
    ]);

    for b in long_distance_suite() {
        for (label, router) in [
            ("baseline", RouterKind::Stochastic(Default::default())),
            ("LinQ", RouterKind::default()),
        ] {
            let eval = evaluate_tilt(&b.circuit, HEAD, router);
            let r = &eval.output.report;
            table.row([
                b.name.to_string(),
                label.to_string(),
                format!("{:.2}", r.opposing_ratio),
                r.swap_count.to_string(),
                r.move_count.to_string(),
                fmt_success(eval.success.success),
            ]);
        }
    }

    println!("Fig. 6: LinQ vs baseline swap insertion (head size {HEAD})\n");
    println!("{}", table.render());
    bench::maybe_print_csv(&table);
    println!("Expected shape (paper): LinQ cuts swaps and moves on every long-");
    println!("distance benchmark, raises the opposing ratio on QFT/SQRT, finds");
    println!("no opposing swaps on BV (single-ancilla traffic), and therefore");
    println!("achieves the higher success rate throughout.");
}
