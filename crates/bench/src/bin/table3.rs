//! Regenerates **Table III** of the TILT paper: LinQ compilation results —
//! pass times, tape-move counts, travel distance, and estimated program
//! execution time for head sizes 16 and 32.
//!
//! Run with: `cargo run --release -p bench --bin table3`

use bench::evaluate_tilt;
use tilt_benchmarks::paper_suite;
use tilt_compiler::RouterKind;
use tilt_report::{fmt_secs, Table};
use tilt_sim::ExecTimeModel;

/// Paper-reported (moves, dist µm, texec s) for one head size.
type PaperRow = (usize, usize, f64);

/// Paper numbers per application, for side-by-side reading: head 16
/// then head 32.
const PAPER: [(&str, [PaperRow; 2]); 6] = [
    ("ADDER", [(10, 104, 2.967), (5, 68, 3.252)]),
    ("BV", [(4, 49, 0.856), (2, 33, 0.987)]),
    ("QAOA", [(18, 232, 1.564), (4, 72, 1.357)]),
    ("RCS", [(65, 992, 1.704), (11, 214, 0.856)]),
    ("QFT", [(162, 2002, 24.820), (69, 1276, 33.876)]),
    ("SQRT", [(168, 1816, 46.554), (76, 1068, 40.817)]),
];

fn main() {
    for (hi, head) in [16usize, 32].into_iter().enumerate() {
        let mut table = Table::new([
            "Application",
            "t_swap(s)",
            "t_move(s)",
            "#moves",
            "dist(um)",
            "t_exec(s)",
            "paper #moves",
            "paper dist",
            "paper t_exec",
        ]);
        for b in paper_suite() {
            let eval = evaluate_tilt(&b.circuit, head, RouterKind::default());
            let r = &eval.output.report;
            let dist_um = ExecTimeModel::default().travel_um(&eval.output.program);
            let paper = PAPER
                .iter()
                .find(|(name, _)| *name == b.name)
                .expect("paper row exists")
                .1[hi];
            table.row([
                b.name.to_string(),
                fmt_secs(r.t_swap),
                fmt_secs(r.t_move),
                r.move_count.to_string(),
                format!("{dist_um:.0}"),
                format!("{:.3}", eval.exec_time_us / 1e6),
                paper.0.to_string(),
                paper.1.to_string(),
                format!("{:.3}", paper.2),
            ]);
        }
        println!("Table III: LinQ compilation results — head size {head}\n");
        println!("{}", table.render());
        bench::maybe_print_csv(&table);
    }
    println!("Wall-clock pass times are host-dependent (the paper used a 32-core");
    println!("Xeon running a Python/Qiskit-based stack); orderings, not absolute");
    println!("values, are the reproduction target. See also `cargo bench`.");
}
