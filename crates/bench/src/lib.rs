//! Shared plumbing for the experiment harnesses.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the TILT
//! paper:
//!
//! | Binary   | Paper artifact |
//! |----------|----------------|
//! | `table2` | Table II — benchmark characteristics |
//! | `table3` | Table III — compilation and execution metrics |
//! | `fig6`   | Fig. 6 — LinQ vs baseline swap insertion |
//! | `fig7`   | Fig. 7 — `MaxSwapLen` sweeps |
//! | `fig8`   | Fig. 8 — TILT vs Ideal TI vs QCCD success rates |
//! | `ablation` | DESIGN.md §5 — design-choice ablations |
//!
//! Criterion benches (`cargo bench`) time the compiler passes behind
//! Table III's `t_swap`/`t_move` columns.

use tilt_circuit::Circuit;
use tilt_compiler::{CompileOutput, Compiler, DeviceSpec, RouterKind};
use tilt_qccd::{compile_qccd, estimate_qccd_success, QccdParams, QccdReport, QccdSpec};
use tilt_sim::{
    estimate_success, execution_time_us, ExecTimeModel, GateTimeModel, NoiseModel, SuccessReport,
};

/// The trap sizes swept for the QCCD comparison (§VI-B: 15–35 ions per
/// trap, best configuration reported).
pub const QCCD_TRAP_SIZES: [usize; 6] = [15, 17, 20, 25, 30, 35];

/// One evaluated TILT configuration.
#[derive(Clone, Debug)]
pub struct TiltEval {
    /// Full compiler output (program + routing + report).
    pub output: CompileOutput,
    /// Success estimation under the default noise model.
    pub success: SuccessReport,
    /// Eq. 5 execution time in µs.
    pub exec_time_us: f64,
}

/// Compiles `circuit` for a tape as wide as its register with the given
/// head size and router, then simulates it under the default models.
///
/// # Panics
///
/// Panics if compilation fails — harness inputs are the fixed paper
/// benchmarks, so failure is a bug worth crashing on.
pub fn evaluate_tilt(circuit: &Circuit, head: usize, router: RouterKind) -> TiltEval {
    let spec = DeviceSpec::new(circuit.n_qubits(), head).expect("paper head sizes are valid");
    let mut compiler = Compiler::new(spec);
    compiler.router(router);
    let output = compiler.compile(circuit).expect("paper benchmarks compile");
    let noise = NoiseModel::default();
    let times = GateTimeModel::default();
    let success = estimate_success(&output.program, &noise, &times);
    let exec_time_us = execution_time_us(&output.program, &times, &ExecTimeModel::default());
    TiltEval {
        output,
        success,
        exec_time_us,
    }
}

/// Prints `table` as CSV to stdout when the `TILT_CSV` environment
/// variable is set — every harness doubles as a data exporter for
/// replotting.
pub fn maybe_print_csv(table: &tilt_report::Table) {
    if std::env::var_os("TILT_CSV").is_some() {
        println!("[csv]");
        print!("{}", table.to_csv());
    }
}

/// Best QCCD result over the paper's trap-size sweep, with the winning
/// ions-per-trap configuration.
pub fn evaluate_qccd_best(circuit: &Circuit) -> (QccdReport, usize) {
    let native = tilt_compiler::decompose::decompose(circuit);
    let noise = NoiseModel::default();
    let times = GateTimeModel::default();
    QCCD_TRAP_SIZES
        .iter()
        .map(|&ions| {
            let spec =
                QccdSpec::for_qubits(circuit.n_qubits(), ions).expect("paper trap sizes are valid");
            let program = compile_qccd(&native, &spec).expect("paper benchmarks fit");
            (
                estimate_qccd_success(&program, &noise, &times, &QccdParams::default()),
                ions,
            )
        })
        .max_by(|(a, _), (b, _)| {
            a.success
                .partial_cmp(&b.success)
                .expect("success rates are comparable")
        })
        .expect("trap-size sweep is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilt_benchmarks::bv::bernstein_vazirani;

    #[test]
    fn evaluate_tilt_produces_consistent_report() {
        let c = bernstein_vazirani(16, &[true; 15]);
        let eval = evaluate_tilt(&c, 8, RouterKind::default());
        assert_eq!(eval.success.moves, eval.output.report.move_count);
        assert!(eval.exec_time_us > 0.0);
    }

    #[test]
    fn qccd_sweep_returns_valid_config() {
        let c = bernstein_vazirani(16, &[true; 15]);
        let (report, ions) = evaluate_qccd_best(&c);
        assert!(QCCD_TRAP_SIZES.contains(&ions));
        assert!(report.success > 0.0);
    }
}
