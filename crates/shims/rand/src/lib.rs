//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to a crate registry, so this
//! workspace vendors the *subset* of the `rand 0.8` API it actually uses:
//! [`rngs::SmallRng`], the [`Rng`] / [`SeedableRng`] traits with
//! `gen`, `gen_range` over integer and float ranges, and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! algorithm family `rand 0.8` uses for `SmallRng` on 64-bit targets.
//! Streams are *not* guaranteed bit-compatible with the real crate; all
//! in-tree consumers only rely on determinism per seed and reasonable
//! statistical quality, both of which hold.

pub mod rngs;
pub mod seq;

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their full domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough integer draw in `[0, span)` via 128-bit widening
/// multiply (Lemire's method without the rejection step; bias is
/// `< span / 2^64`, irrelevant at the spans used here).
#[inline]
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1usize..=5);
            assert!((1..=5).contains(&y));
            let z = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&z));
            let w = rng.gen_range(0..3u8);
            assert!(w < 3);
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..=5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut rng = SmallRng::seed_from_u64(6);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SmallRng::seed_from_u64(0).gen_range(5usize..5);
    }
}
