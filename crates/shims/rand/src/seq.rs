//! Sequence helpers (`SliceRandom`).

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut SmallRng::seed_from_u64(9));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }

    #[test]
    fn choose_none_on_empty() {
        let v: Vec<u8> = vec![];
        assert!(v.choose(&mut SmallRng::seed_from_u64(0)).is_none());
    }
}
