//! The [`Strategy`] trait and its combinators.

use crate::TestRng;
use std::ops::Range;
use std::rc::Rc;

/// How many times [`Filter`] retries before declaring the predicate too
/// restrictive (matches real proptest's local-rejection spirit).
const MAX_FILTER_RETRIES: usize = 1_000;

/// A recipe for producing random values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// is just a deterministic function of the [`TestRng`] stream.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then generates from the strategy
    /// `f` builds out of it (dependent generation).
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Discards values failing `pred`, re-drawing up to a retry cap.
    ///
    /// `reason` is reported if the cap is hit.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Type-erases the strategy (needed by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.new_value(rng)))
    }
}

/// Strategies behind shared type-erased closures.
#[derive(Clone)]
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice among same-valued strategies.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len());
        self.options[i].new_value(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_FILTER_RETRIES {
            let v = self.inner.new_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected {MAX_FILTER_RETRIES} consecutive values",
            self.reason
        );
    }
}

// --- numeric ranges ------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// --- tuples ---------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(S0 / 0);
tuple_strategy!(S0 / 0, S1 / 1);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);

// --- collections ----------------------------------------------------------

/// Length distribution for [`VecStrategy`].
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// See [`prop::collection::vec`](crate::prop::collection::vec).
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> VecStrategy<S> {
    pub(crate) fn new(element: S, size: SizeRange) -> Self {
        VecStrategy { element, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.lo + rng.below(self.size.hi - self.size.lo);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

// --- simplified regex string strategies -----------------------------------

/// One parsed regex atom.
enum Atom {
    /// `.` — an arbitrary character.
    Any,
    /// `[a-z0-9_]` — one of an explicit set.
    Class(Vec<char>),
    /// A literal character.
    Lit(char),
}

/// `(atom, min_repeats, max_repeats_inclusive)`.
type Quantified = (Atom, usize, usize);

/// Parses the tiny regex dialect the in-tree tests use: atoms are `.`,
/// `[set]` (with `a-z` ranges) or literals; quantifiers are `{m,n}`,
/// `{m}`, `*`, `+`, `?`. Anything fancier is rejected loudly rather
/// than silently misgenerated.
fn parse_pattern(pattern: &str) -> Vec<Quantified> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => Atom::Any,
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        None => panic!("unterminated [ in pattern {pattern:?}"),
                        Some(']') => break,
                        Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                            let lo = prev.take().unwrap();
                            let hi = chars.next().unwrap();
                            for x in lo..=hi {
                                set.push(x);
                            }
                        }
                        Some(x) => {
                            if let Some(p) = prev.replace(x) {
                                set.push(p);
                            }
                        }
                    }
                }
                if let Some(p) = prev {
                    set.push(p);
                }
                assert!(!set.is_empty(), "empty character class in {pattern:?}");
                Atom::Class(set)
            }
            '\\' => Atom::Lit(chars.next().expect("dangling escape")),
            ']' | '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' => {
                panic!("unsupported regex construct {c:?} in pattern {pattern:?}")
            }
            other => Atom::Lit(other),
        };
        // Optional quantifier.
        let (lo, hi) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for x in chars.by_ref() {
                    if x == '}' {
                        break;
                    }
                    spec.push(x);
                }
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.parse().expect("bad {m,n} quantifier"),
                        n.parse().expect("bad {m,n} quantifier"),
                    ),
                    None => {
                        let m: usize = spec.parse().expect("bad {m} quantifier");
                        (m, m)
                    }
                }
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        assert!(lo <= hi, "inverted quantifier in {pattern:?}");
        atoms.push((atom, lo, hi));
    }
    atoms
}

/// Draws an "arbitrary" character for `.`: mostly printable ASCII, with
/// occasional whitespace/control and non-ASCII code points so parsers
/// meet hostile input.
fn arbitrary_char(rng: &mut TestRng) -> char {
    match rng.below(20) {
        0 => '\n',
        1 => '\t',
        2 => {
            // Any scalar value below the surrogate range.
            char::from_u32(1 + rng.below(0xD7FF) as u32).unwrap_or('\u{FFFD}')
        }
        _ => (0x20u8 + rng.below(0x5F) as u8) as char,
    }
}

/// String patterns act as strategies, as in real proptest (with the
/// simplified dialect described on [`parse_pattern`]).
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        // Parsing per draw keeps the type zero-state; patterns are tiny.
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (atom, lo, hi) in &atoms {
            let count = lo + rng.below(hi - lo + 1);
            for _ in 0..count {
                out.push(match atom {
                    Atom::Any => arbitrary_char(rng),
                    Atom::Class(set) => set[rng.below(set.len())],
                    Atom::Lit(c) => *c,
                });
            }
        }
        out
    }
}
