//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no registry access, so this crate vendors
//! the subset of proptest's API the workspace's property tests use:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//!   `prop_filter` combinators;
//! * strategies for integer and float ranges, tuples of strategies,
//!   [`Just`], simplified regex string patterns (`".{0,200}"`,
//!   `"[a-z0-9]{1,4}"`), [`collection::vec`](prop::collection::vec) and
//!   [`any`];
//! * the [`proptest!`] test-harness macro with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`, plus
//!   [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_oneof!`].
//!
//! Semantics differ from real proptest in one deliberate way: there is
//! **no shrinking**. A failing case panics with its case index and seed,
//! which — because generation is a pure function of the test name and
//! case index — is enough to reproduce it deterministically.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub mod strategy;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};

/// Runner configuration (the `cases` knob only).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The deterministic generator handed to strategies.
///
/// Wraps the workspace's xoshiro-based [`SmallRng`]; each test case gets
/// a stream derived from the test name and case index.
pub struct TestRng(SmallRng);

impl TestRng {
    /// Stream for case `case` of the test named `name` (FNV-1a over the
    /// name, mixed with the case index).
    pub fn for_case(name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(SmallRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: usize) -> usize {
        self.0.gen_range(0..bound.max(1))
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.0.gen()
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.0.gen()
    }

    /// Uniform bool.
    pub fn bool(&mut self) -> bool {
        self.0.gen()
    }
}

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy value.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy producing uniform booleans.
#[derive(Clone, Copy, Debug)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// The canonical strategy for `T` (only `bool` is needed in-tree).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod prop {
    //! The `prop::` namespace (`prop::collection::vec`).

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::{SizeRange, Strategy, VecStrategy};

        /// Strategy for `Vec`s of `element` values with a length drawn
        /// from `size` (a `usize` range).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy::new(element, size.into())
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        ProptestConfig, TestRng,
    };
}

/// Builds one value from a strategy expression (used by the
/// [`proptest!`] expansion; not part of real proptest's API).
pub fn generate<S: Strategy>(strategy: &S, rng: &mut TestRng) -> S::Value {
    strategy.new_value(rng)
}

/// Runs `body` for every case, labelling panics with the case index so
/// failures are reproducible without shrinking.
pub fn run_cases(name: &str, config: &ProptestConfig, body: impl Fn(&mut TestRng)) {
    for case in 0..config.cases as u64 {
        let mut rng = TestRng::for_case(name, case);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = outcome {
            eprintln!("proptest '{name}': case {case}/{} failed (regenerate with the same test name and case index)", config.cases);
            std::panic::resume_unwind(payload);
        }
    }
}

/// `proptest! { #![proptest_config(...)] #[test] fn name(pat in strategy, ...) { body } ... }`
///
/// Each property becomes a plain `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal muncher for [`proptest!`]: one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            // Bind the strategies once; cases re-sample values only.
            $crate::run_cases(stringify!($name), &config, |rng| {
                $(let $pat = $crate::generate(&($strat), rng);)+
                $body
            });
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// `prop_assert!` — plain `assert!` (failures are not shrunk).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// `prop_assert_eq!` — plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// `prop_assert_ne!` — plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// `prop_oneof![s1, s2, ...]` — uniform choice among the listed
/// strategies (all must share a `Value` type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = crate::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&v));
            let f = crate::generate(&(-1.5f64..1.5), &mut rng);
            assert!((-1.5..1.5).contains(&f));
        }
    }

    #[test]
    fn map_filter_flat_map_compose() {
        let strat = (2usize..6)
            .prop_flat_map(|n| (Just(n), 0..n))
            .prop_filter("nonzero", |&(_, k)| k != 0)
            .prop_map(|(n, k)| n * 10 + k);
        let mut rng = TestRng::for_case("compose", 1);
        for _ in 0..500 {
            let v = crate::generate(&strat, &mut rng);
            let (n, k) = (v / 10, v % 10);
            assert!((2..6).contains(&n) && k >= 1 && k < n);
        }
    }

    #[test]
    fn oneof_covers_all_branches() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::for_case("oneof", 2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[crate::generate(&strat, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let strat = prop::collection::vec(0usize..5, 2..7);
        let mut rng = TestRng::for_case("vec", 3);
        for _ in 0..300 {
            let v = crate::generate(&strat, &mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn regex_char_class_pattern() {
        let mut rng = TestRng::for_case("regex", 4);
        for _ in 0..300 {
            let s = crate::generate(&"[a-z0-9]{1,4}", &mut rng);
            assert!((1..=4).contains(&s.chars().count()), "{s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn regex_dot_pattern_varies_length() {
        let mut rng = TestRng::for_case("dot", 5);
        let mut lens = std::collections::HashSet::new();
        for _ in 0..200 {
            let s = crate::generate(&".{0,20}", &mut rng);
            assert!(s.chars().count() <= 20);
            lens.insert(s.chars().count());
        }
        assert!(lens.len() > 5, "lengths should vary: {lens:?}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro itself: multiple params, tuple patterns, trailing comma.
        #[test]
        fn macro_binds_patterns((a, b) in (0usize..10, 0usize..10), flip in any::<bool>(),) {
            prop_assert!(a < 10 && b < 10);
            let _ = flip;
        }

        #[test]
        fn macro_supports_second_fn(x in 5u64..6) {
            prop_assert_eq!(x, 5);
        }
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        let one: Vec<usize> = {
            let mut rng = TestRng::for_case("det", 7);
            (0..10)
                .map(|_| crate::generate(&(0usize..1000), &mut rng))
                .collect()
        };
        let two: Vec<usize> = {
            let mut rng = TestRng::for_case("det", 7);
            (0..10)
                .map(|_| crate::generate(&(0usize..1000), &mut rng))
                .collect()
        };
        assert_eq!(one, two);
    }
}
