//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no registry access, so this crate provides
//! the subset of criterion's API the in-tree benches use — `Criterion`,
//! `benchmark_group` / `bench_function` / `sample_size` / `finish`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!`
//! macros — backed by a deliberately simple measurement loop:
//!
//! 1. warm up until ~50 ms of work has run (at least 3 iterations),
//! 2. time `sample_size` batches sized to ≥1 ms each,
//! 3. report the median batch mean, a robust point estimate.
//!
//! Results print as `bench <name> ... <time> (<iters> iters)` lines and
//! are also recorded in a process-global list so harness binaries can
//! post-process them (see [`take_measurements`]).
//!
//! Benches using this shim must set `harness = false` in `Cargo.toml`
//! (which the real criterion requires as well).

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One completed measurement.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// `group/function` id of the bench.
    pub name: String,
    /// Median per-iteration time.
    pub mean_ns: f64,
    /// Total iterations timed (excluding warm-up).
    pub iterations: u64,
}

static MEASUREMENTS: Mutex<Vec<Measurement>> = Mutex::new(Vec::new());

/// Drains every measurement recorded so far in this process.
pub fn take_measurements() -> Vec<Measurement> {
    std::mem::take(&mut MEASUREMENTS.lock().expect("measurement lock"))
}

/// Top-level benchmark context.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benches.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Benches a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        run_bench(id.into(), self.sample_size, f);
    }
}

/// A group of benches sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed batches each bench records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benches `f` under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_bench(format!("{}/{}", self.name, id.into()), self.sample_size, f);
        self
    }

    /// Ends the group (a no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; drives the timing
/// loop via [`Bencher::iter`].
pub struct Bencher {
    /// Iterations the current call should run.
    iters: u64,
    /// Time the routine took, filled by `iter`.
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, preventing its result from being optimized out.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Re-export so bench code may use `criterion::black_box` as well as
/// `std::hint::black_box`.
pub use std::hint::black_box;

fn time_batch<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_bench<F: FnMut(&mut Bencher)>(name: String, sample_size: usize, mut f: F) {
    // Warm up and estimate the per-iteration cost.
    let mut iters = 1u64;
    let mut once = time_batch(&mut f, 1);
    let mut warm = once;
    while warm < Duration::from_millis(50) && iters < (1 << 20) {
        iters *= 2;
        once = time_batch(&mut f, iters);
        warm += once;
    }
    let per_iter = once.as_secs_f64() / iters as f64;
    // Size batches to at least ~1 ms so Instant resolution is noise-free.
    let batch = ((1e-3 / per_iter.max(1e-12)).ceil() as u64).clamp(1, 1 << 24);

    let mut means: Vec<f64> = (0..sample_size)
        .map(|_| time_batch(&mut f, batch).as_secs_f64() / batch as f64)
        .collect();
    means.sort_by(f64::total_cmp);
    let median = means[means.len() / 2];

    println!(
        "bench {name:<48} {:>14} ({} iters/sample, {} samples)",
        format_time(median),
        batch,
        sample_size
    );
    MEASUREMENTS
        .lock()
        .expect("measurement lock")
        .push(Measurement {
            name,
            mean_ns: median * 1e9,
            iterations: batch * sample_size as u64,
        });
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// `criterion_group!(name, fn_a, fn_b, ...)` — bundles bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// `criterion_main!(group_a, group_b)` — the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes `--bench`; a bare `--test` run (from
            // `cargo test --benches`) should do nothing but succeed.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("spin", |b| {
            b.iter(|| (0..100u64).map(black_box).sum::<u64>());
        });
        group.finish();
        let ms = take_measurements();
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].name, "shim/spin");
        assert!(ms[0].mean_ns > 0.0);
    }

    #[test]
    fn group_prefixes_names() {
        let mut c = Criterion::default();
        c.benchmark_group("g")
            .sample_size(2)
            .bench_function("f", |b| b.iter(|| 1 + 1));
        let ms = take_measurements();
        assert!(ms.iter().any(|m| m.name == "g/f"));
    }
}
