//! The work-stealing pool behind [`crate::join`].
//!
//! # Architecture
//!
//! A [`Pool`] owns `threads - 1` worker threads (the thread calling
//! [`join`](crate::join) is the remaining unit of parallelism) plus one
//! mutex-protected [`VecDeque`] of pending jobs per worker and a shared
//! *injector* queue for jobs submitted from threads outside the pool.
//!
//! # Stealing discipline
//!
//! * A worker pops its **own** deque from the back (LIFO): the job it
//!   pushed last is the one whose data is hottest in cache and whose
//!   split siblings it is about to wait on.
//! * When its own deque is empty it **steals** — first from the
//!   injector, then from the other workers' deques, both from the
//!   **front** (FIFO): the oldest job in a deque is the biggest
//!   remaining split of that worker's tree, so one steal moves the most
//!   work per synchronization.
//! * A thread blocked in `join` waiting for its second closure does not
//!   spin idle: it first tries to *reclaim* the job (if nobody stole it
//!   yet it runs it inline, exactly as serial code would), and
//!   otherwise helps by stealing unrelated jobs until its job's latch
//!   flips.
//!
//! Jobs are borrowed from the joining thread's stack ([`StackJob`]) and
//! handed around as type-erased [`JobRef`] pointers; a state machine
//! (`PENDING → CLAIMED → DONE`) guarantees exactly one executor per job
//! and lets `join` prove no queue still references the job before its
//! stack frame dies.
//!
//! # Shutdown semantics
//!
//! The global pool ([`global`]) is created lazily on first use and is
//! **never** torn down: idle workers park on a condvar (with a 50 ms
//! re-check so a lost wakeup only costs latency, never progress) and
//! cost nothing while parked. Explicitly constructed pools (tests,
//! embedders) shut down on [`Drop`]: the shutdown flag is raised, every
//! parked worker is woken, and the handles are joined — by then all
//! jobs have completed, because `join` never returns before both of its
//! closures have.

use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Job lifecycle: queued and claimable.
const PENDING: u8 = 0;
/// Exactly one thread won the claim race and is executing the job.
const CLAIMED: u8 = 1;
/// Execution finished; result (or panic payload) is readable.
const DONE: u8 = 2;

/// A type-erased pointer to a [`StackJob`] living on some `join`
/// caller's stack, valid until that job reaches `DONE` (the caller
/// never returns before then).
pub(crate) struct JobRef {
    data: *const (),
    exec: unsafe fn(*const ()),
}

// SAFETY: the pointee is a `StackJob` whose closure and result types
// are `Send`, and the state machine hands the pointer to exactly one
// executing thread at a time.
unsafe impl Send for JobRef {}

impl JobRef {
    /// Runs the job if it is still unclaimed; a no-op for jobs the
    /// owner reclaimed inline after this reference was queued.
    unsafe fn execute(self) {
        // SAFETY: the caller guarantees `data` still points at a live
        // `StackJob` (the owner blocks in `join` until DONE), and
        // `exec` was instantiated for exactly that job type.
        unsafe { (self.exec)(self.data) };
    }
}

/// A two-way `join` job allocated on the caller's stack: the closure,
/// a slot for its result, and the claim/done latch.
pub(crate) struct StackJob<F, R> {
    state: AtomicU8,
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<R>>,
    payload: UnsafeCell<Option<Box<dyn std::any::Any + Send>>>,
}

// SAFETY: cross-thread access is serialized by the `state` machine —
// `func` is touched only by the claim winner, `result`/`payload` are
// written before the `DONE` release store and read after an acquire
// load observes it.
unsafe impl<F: Send, R: Send> Sync for StackJob<F, R> {}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    fn new(f: F) -> Self {
        StackJob {
            state: AtomicU8::new(PENDING),
            func: UnsafeCell::new(Some(f)),
            result: UnsafeCell::new(None),
            payload: UnsafeCell::new(None),
        }
    }

    fn as_job_ref(&self) -> JobRef {
        unsafe fn exec<F, R>(data: *const ())
        where
            F: FnOnce() -> R + Send,
            R: Send,
        {
            let job = unsafe { &*(data as *const StackJob<F, R>) };
            if job.try_claim() {
                unsafe { job.run_claimed() };
            }
        }
        JobRef {
            data: self as *const Self as *const (),
            exec: exec::<F, R>,
        }
    }

    /// Wins or loses the right to execute; exactly one caller ever wins.
    fn try_claim(&self) -> bool {
        self.state
            .compare_exchange(PENDING, CLAIMED, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Runs the closure after a successful claim, capturing panics so
    /// they cross back to the joining thread instead of killing a
    /// worker.
    ///
    /// # Safety
    ///
    /// Caller must have won [`Self::try_claim`].
    unsafe fn run_claimed(&self) {
        let f = unsafe { (*self.func.get()).take() }.expect("claimed job has its closure");
        match panic::catch_unwind(AssertUnwindSafe(f)) {
            Ok(r) => unsafe { *self.result.get() = Some(r) },
            Err(p) => unsafe { *self.payload.get() = Some(p) },
        }
        self.state.store(DONE, Ordering::Release);
    }

    fn is_done(&self) -> bool {
        self.state.load(Ordering::Acquire) == DONE
    }

    /// Extracts the result, resuming the job's panic if it had one.
    ///
    /// # Safety
    ///
    /// Caller must have observed `DONE` (or have executed the job on
    /// this thread).
    unsafe fn take_result(&self) -> R {
        if let Some(p) = unsafe { (*self.payload.get()).take() } {
            panic::resume_unwind(p);
        }
        unsafe { (*self.result.get()).take() }.expect("done job has a result")
    }
}

/// Shared state of one pool.
pub(crate) struct PoolState {
    /// One deque per worker thread; owners pop the back, thieves the
    /// front.
    deques: Vec<Mutex<VecDeque<JobRef>>>,
    /// Queue for jobs submitted by threads outside the pool.
    injector: Mutex<VecDeque<JobRef>>,
    /// Wakeup epoch: bumped under the lock on every push so a worker
    /// that saw empty queues can detect a racing submission before it
    /// parks.
    signal: Mutex<u64>,
    condvar: Condvar,
    shutdown: AtomicBool,
    /// Total parallelism (workers + the joining caller).
    threads: usize,
}

thread_local! {
    /// `(worker index, owning pool)` when the current thread is a pool
    /// worker. The raw pointer is only compared for identity, never
    /// dereferenced (each worker's `Arc` keeps its pool alive anyway).
    static WORKER: Cell<Option<(usize, *const PoolState)>> = const { Cell::new(None) };
}

impl PoolState {
    /// The calling thread's worker index in *this* pool, if any.
    fn current_worker(self: &Arc<Self>) -> Option<usize> {
        WORKER.with(|w| match w.get() {
            Some((index, pool)) if std::ptr::eq(pool, Arc::as_ptr(self)) => Some(index),
            _ => None,
        })
    }

    fn push(self: &Arc<Self>, job: JobRef) {
        match self.current_worker() {
            Some(i) => self.deques[i].lock().expect("deque lock").push_back(job),
            None => self.injector.lock().expect("injector lock").push_back(job),
        }
        let mut epoch = self.signal.lock().expect("signal lock");
        *epoch += 1;
        // Jobs are coarse (kernel-sized slices), so waking every parked
        // worker per push is noise, and it never strands a sleeper.
        self.condvar.notify_all();
    }

    /// Pops work: own deque (LIFO) first for workers, then the injector
    /// and every deque (FIFO steals).
    fn find_work(&self, me: Option<usize>) -> Option<JobRef> {
        if let Some(i) = me {
            if let Some(job) = self.deques[i].lock().expect("deque lock").pop_back() {
                return Some(job);
            }
        }
        if let Some(job) = self.injector.lock().expect("injector lock").pop_front() {
            return Some(job);
        }
        let n = self.deques.len();
        let start = me.map_or(0, |i| i + 1);
        for k in 0..n {
            let j = (start + k) % n;
            if Some(j) == me {
                continue;
            }
            if let Some(job) = self.deques[j].lock().expect("deque lock").pop_front() {
                return Some(job);
            }
        }
        None
    }

    /// Removes `job` from the queue it was pushed to, by pointer
    /// identity. `Some` means nobody stole it and the caller now owns
    /// it exclusively; `None` means a thief holds it (or finished it).
    fn try_reclaim(&self, me: Option<usize>, data: *const ()) -> bool {
        let queue = match me {
            Some(i) => &self.deques[i],
            None => &self.injector,
        };
        let mut q = queue.lock().expect("queue lock");
        // Scan from the back: our job is the most recent push.
        match q.iter().rposition(|j| std::ptr::eq(j.data, data)) {
            Some(at) => {
                q.remove(at);
                true
            }
            None => false,
        }
    }

    fn worker_main(self: Arc<Self>, index: usize) {
        WORKER.with(|w| w.set(Some((index, Arc::as_ptr(&self)))));
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            if let Some(job) = self.find_work(Some(index)) {
                unsafe { job.execute() };
                continue;
            }
            // Park. The epoch read/recheck closes the race where a job
            // is pushed between our last scan and the wait; the timeout
            // bounds the cost of any wakeup we still miss.
            let epoch = *self.signal.lock().expect("signal lock");
            if let Some(job) = self.find_work(Some(index)) {
                unsafe { job.execute() };
                continue;
            }
            let guard = self.signal.lock().expect("signal lock");
            if *guard == epoch && !self.shutdown.load(Ordering::Acquire) {
                let _ = self
                    .condvar
                    .wait_timeout(guard, Duration::from_millis(50))
                    .expect("signal lock");
            }
        }
    }
}

/// A fixed-size work-stealing thread pool.
///
/// Most code uses the process-global pool implicitly through
/// [`crate::join`]; constructing a `Pool` directly exists for tests and
/// for embedders that want an isolated worker set.
pub struct Pool {
    state: Arc<PoolState>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// A pool with `threads` total units of parallelism (`threads - 1`
    /// worker threads; the thread calling [`Pool::join`] is the last).
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let workers = threads - 1;
        let state = Arc::new(PoolState {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            signal: Mutex::new(0),
            condvar: Condvar::new(),
            shutdown: AtomicBool::new(false),
            threads,
        });
        let handles = (0..workers)
            .map(|index| {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("rayon-shim-{index}"))
                    .spawn(move || state.worker_main(index))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool { state, handles }
    }

    /// Total parallelism (workers + the joining caller).
    pub fn threads(&self) -> usize {
        self.state.threads
    }

    /// Two-way fork/join on this pool; see [`crate::join`].
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        if self.state.threads <= 1 {
            let ra = a();
            let rb = b();
            return (ra, rb);
        }
        join_in(&self.state, a, b)
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.state.shutdown.store(true, Ordering::Release);
        {
            let mut epoch = self.state.signal.lock().expect("signal lock");
            *epoch += 1;
            self.state.condvar.notify_all();
        }
        for handle in self.handles.drain(..) {
            handle.join().expect("pool worker exits cleanly");
        }
    }
}

/// The fork/join core: publish `b`, run `a` inline, then reclaim or
/// wait for `b` — helping with other queued jobs instead of spinning.
fn join_in<A, B, RA, RB>(state: &Arc<PoolState>, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let me = state.current_worker();
    let job_b = StackJob::new(b);
    let data = job_b.as_job_ref().data;
    state.push(job_b.as_job_ref());

    // `job_b` borrows this stack frame, so even if `a` panics we must
    // not unwind past it while a queue or a thief still holds the
    // pointer: reclaim (dropping `b` unexecuted) or wait for the thief.
    let ra = match panic::catch_unwind(AssertUnwindSafe(a)) {
        Ok(ra) => ra,
        Err(primary) => {
            if !state.try_reclaim(me, data) {
                while !job_b.is_done() {
                    std::thread::yield_now();
                }
                // `a`'s panic wins; a concurrent panic from `b` is
                // dropped with the job.
                let _ = unsafe { (*job_b.payload.get()).take() };
            }
            panic::resume_unwind(primary);
        }
    };

    if state.try_reclaim(me, data) {
        // Nobody stole it: run inline, exactly as serial code would.
        let claimed = job_b.try_claim();
        debug_assert!(claimed, "reclaimed job cannot have been claimed");
        unsafe { job_b.run_claimed() };
        let rb = unsafe { job_b.take_result() };
        return (ra, rb);
    }
    // Stolen: help with other work until the thief flips the latch.
    while !job_b.is_done() {
        match state.find_work(me) {
            Some(job) => unsafe { job.execute() },
            None => std::thread::yield_now(),
        }
    }
    let rb = unsafe { job_b.take_result() };
    (ra, rb)
}

/// The lazily-created process-global pool.
///
/// Sized by the `RAYON_NUM_THREADS` environment variable when set to a
/// positive integer (mirroring real rayon), otherwise by
/// [`std::thread::available_parallelism`]. Created on first use and
/// intentionally leaked — see the module docs on shutdown semantics.
pub(crate) fn global() -> &'static Pool {
    static GLOBAL: OnceLock<Pool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let threads = std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1)
            });
        Pool::new(threads)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Parallel recursive sum over the pool — exercises deep nesting,
    /// stealing, and inline reclaims all at once.
    fn sum(pool: &Pool, lo: u64, hi: u64) -> u64 {
        if hi - lo <= 64 {
            return (lo..hi).sum();
        }
        let mid = lo + (hi - lo) / 2;
        let (a, b) = pool.join(|| sum(pool, lo, mid), || sum(pool, mid, hi));
        a + b
    }

    #[test]
    fn pool_join_computes_both_sides() {
        let pool = Pool::new(4);
        let (a, b) = pool.join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn nested_joins_sum_correctly_across_pool_sizes() {
        for threads in [1, 2, 4, 8] {
            let pool = Pool::new(threads);
            let n = 100_000u64;
            assert_eq!(sum(&pool, 0, n), n * (n - 1) / 2, "threads={threads}");
        }
    }

    #[test]
    fn many_external_callers_share_one_pool() {
        let pool = Pool::new(3);
        std::thread::scope(|s| {
            for _ in 0..6 {
                s.spawn(|| {
                    let n = 20_000u64;
                    assert_eq!(sum(&pool, 0, n), n * (n - 1) / 2);
                });
            }
        });
    }

    #[test]
    fn workers_actually_execute_jobs() {
        // With enough recursive splits and a 4-thread pool, at least one
        // leaf must run on a worker thread (the caller alone cannot hold
        // every claim when real workers are stealing).
        let pool = Pool::new(4);
        let on_worker = AtomicUsize::new(0);
        fn walk(pool: &Pool, depth: usize, on_worker: &AtomicUsize) {
            if depth == 0 {
                if WORKER.with(std::cell::Cell::get).is_some() {
                    on_worker.fetch_add(1, Ordering::Relaxed);
                }
                // Leaf work large enough that thieves get a chance.
                std::hint::black_box((0..2_000u64).sum::<u64>());
                return;
            }
            pool.join(
                || walk(pool, depth - 1, on_worker),
                || walk(pool, depth - 1, on_worker),
            );
        }
        walk(&pool, 10, &on_worker);
        assert!(
            on_worker.load(Ordering::Relaxed) > 0,
            "no leaf ever ran on a pool worker"
        );
    }

    #[test]
    fn panic_in_stolen_side_propagates_to_caller() {
        let pool = Pool::new(4);
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.join(
                || std::hint::black_box((0..10_000u64).sum::<u64>()),
                || panic!("boom from b"),
            );
        }));
        let payload = caught.expect_err("join must propagate b's panic");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "boom from b");
    }

    #[test]
    fn panic_in_first_side_does_not_leak_the_job() {
        let pool = Pool::new(2);
        for _ in 0..50 {
            let caught = panic::catch_unwind(AssertUnwindSafe(|| {
                pool.join(|| panic!("boom from a"), || 7);
            }));
            assert!(caught.is_err());
        }
        // The pool stays usable afterwards.
        let (a, b) = pool.join(|| 3, || 4);
        assert_eq!((a, b), (3, 4));
    }

    #[test]
    fn drop_joins_all_workers() {
        for _ in 0..10 {
            let pool = Pool::new(4);
            let n = 10_000u64;
            assert_eq!(sum(&pool, 0, n), n * (n - 1) / 2);
            drop(pool); // must not hang or panic
        }
    }
}
