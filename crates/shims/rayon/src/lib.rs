//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon)
//! crate, exposing the small surface the statevector kernels use:
//!
//! * [`join`] — potentially-parallel two-way fork/join.
//! * [`current_num_threads`] — parallelism available to `join`.
//! * [`prelude::ParallelSliceMut::par_chunks_mut`] — data-parallel
//!   mutation of disjoint slice chunks, driven to completion by
//!   [`prelude::ParChunksMut::for_each`].
//!
//! Instead of a work-stealing pool this shim uses `std::thread::scope`:
//! callers are expected to gate parallel dispatch behind a size
//! threshold (the statevector kernels do), so the per-call thread-spawn
//! cost is amortized over large chunks. On a single-core host every
//! entry point degrades to straight serial execution with zero spawns.

use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// Number of worker threads `join` may fan out to (the host's available
/// parallelism, cached on first use).
pub fn current_num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Runs both closures, in parallel when the host has more than one
/// hardware thread, and returns both results.
///
/// Unlike real rayon there is no pool: the second closure runs on a
/// freshly scoped thread. Callers should only invoke this above a work
/// threshold that dwarfs a thread spawn (≈10 µs).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        (ra, rb)
    } else {
        std::thread::scope(|s| {
            let hb = s.spawn(b);
            let ra = a();
            let rb = hb.join().expect("rayon-shim: joined task panicked");
            (ra, rb)
        })
    }
}

pub mod prelude {
    //! Traits imported by `use rayon::prelude::*`.

    /// Lazily-parallel iterator over disjoint `&mut` chunks of a slice.
    ///
    /// Only [`for_each`](ParChunksMut::for_each) drives it; there is no
    /// general `ParallelIterator` machinery in this shim.
    pub struct ParChunksMut<'a, T> {
        slice: &'a mut [T],
        chunk: usize,
    }

    impl<'a, T: Send> ParChunksMut<'a, T> {
        /// Applies `f` to every chunk, splitting the chunk list across
        /// up to [`current_num_threads`](crate::current_num_threads)
        /// scoped threads.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&mut [T]) + Send + Sync,
        {
            let threads = crate::current_num_threads();
            let n_chunks = self.slice.len().div_ceil(self.chunk.max(1));
            if threads <= 1 || n_chunks <= 1 {
                for c in self.slice.chunks_mut(self.chunk) {
                    f(c);
                }
                return;
            }
            // Hand each worker a contiguous run of whole chunks so each
            // spawn covers many elements.
            let workers = threads.min(n_chunks);
            let chunks_per_worker = n_chunks.div_ceil(workers);
            let stride = chunks_per_worker * self.chunk;
            std::thread::scope(|s| {
                for shard in self.slice.chunks_mut(stride) {
                    let f = &f;
                    let chunk = self.chunk;
                    s.spawn(move || {
                        for c in shard.chunks_mut(chunk) {
                            f(c);
                        }
                    });
                }
            });
        }
    }

    /// Parallel chunking of mutable slices.
    pub trait ParallelSliceMut<T: Send> {
        /// Splits into chunks of `chunk_size` (last may be shorter) for
        /// parallel mutation.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
            assert!(chunk_size > 0, "chunk size must be positive");
            ParChunksMut {
                slice: self,
                chunk: chunk_size,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn join_nests() {
        let ((a, b), c) = join(|| join(|| 1, || 2), || 3);
        assert_eq!((a, b, c), (1, 2, 3));
    }

    #[test]
    fn par_chunks_mut_touches_every_element_once() {
        let mut v = vec![1u64; 10_000];
        v.par_chunks_mut(128).for_each(|c| {
            for x in c {
                *x += 1;
            }
        });
        assert!(v.iter().all(|&x| x == 2));
    }

    #[test]
    fn par_chunks_mut_with_oversized_chunk() {
        let mut v = vec![0u8; 7];
        v.par_chunks_mut(100).for_each(|c| c.fill(9));
        assert_eq!(v, vec![9; 7]);
    }
}
