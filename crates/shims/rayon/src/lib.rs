//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon)
//! crate, exposing the small surface the statevector kernels use:
//!
//! * [`join`] — potentially-parallel two-way fork/join.
//! * [`current_num_threads`] — parallelism available to `join`.
//! * [`prelude::ParallelSliceMut::par_chunks_mut`] — data-parallel
//!   mutation of disjoint slice chunks, driven to completion by
//!   [`prelude::ParChunksMut::for_each`].
//!
//! Unlike the first incarnation of this shim (which spawned a scoped
//! thread per `join`), dispatch now runs on a real **work-stealing
//! pool** ([`pool::Pool`]): a fixed worker set created lazily on first
//! use, per-worker job deques, FIFO stealing, and a help-first wait
//! loop, so fine-grained parallel splits cost a queue push instead of a
//! thread spawn. See [`pool`] for the stealing discipline and shutdown
//! semantics. On a single-core host every entry point degrades to
//! straight serial execution with zero queue traffic.
//!
//! The pool is sized by `RAYON_NUM_THREADS` (mirroring real rayon) or,
//! absent that, by [`std::thread::available_parallelism`].

pub mod pool;

pub use pool::Pool;

/// Number of threads `join` may fan out over (the global pool's size,
/// including the calling thread).
pub fn current_num_threads() -> usize {
    pool::global().threads()
}

/// Runs both closures, potentially in parallel, and returns both
/// results.
///
/// The second closure is published to the global work-stealing pool
/// while the first runs on the calling thread; if no worker steals it
/// in the meantime the caller reclaims and runs it inline, so the
/// serial fast path is one queue push + pop. Callers should still gate
/// dispatch behind a work threshold (the statevector kernels do) —
/// below a few microseconds of work the queue round-trip dominates.
///
/// # Panics
///
/// Propagates a panic from either closure (if both panic, the first
/// closure's payload wins, matching the original shim's behaviour).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    pool::global().join(a, b)
}

pub mod prelude {
    //! Traits imported by `use rayon::prelude::*`.

    /// Lazily-parallel iterator over disjoint `&mut` chunks of a slice.
    ///
    /// Only [`for_each`](ParChunksMut::for_each) drives it; there is no
    /// general `ParallelIterator` machinery in this shim.
    pub struct ParChunksMut<'a, T> {
        slice: &'a mut [T],
        chunk: usize,
    }

    impl<'a, T: Send> ParChunksMut<'a, T> {
        /// Applies `f` to every chunk, splitting the chunk list
        /// recursively over the pool with [`crate::join`] so idle
        /// workers steal whole runs of chunks.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&mut [T]) + Send + Sync,
        {
            let threads = crate::current_num_threads();
            let n_chunks = self.slice.len().div_ceil(self.chunk.max(1));
            if threads <= 1 || n_chunks <= 1 {
                for c in self.slice.chunks_mut(self.chunk) {
                    f(c);
                }
                return;
            }
            // Oversplit ~4× the thread count so stealing can rebalance
            // uneven chunk costs, while each task still covers whole
            // chunks.
            let per_task = n_chunks.div_ceil(threads * 4).max(1);
            split_for_each(self.slice, self.chunk, per_task, &f);
        }
    }

    /// Recursive binary split of the chunk list down to `per_task`
    /// chunks per leaf.
    fn split_for_each<T: Send, F>(slice: &mut [T], chunk: usize, per_task: usize, f: &F)
    where
        F: Fn(&mut [T]) + Send + Sync,
    {
        let n_chunks = slice.len().div_ceil(chunk);
        if n_chunks <= per_task {
            for c in slice.chunks_mut(chunk) {
                f(c);
            }
            return;
        }
        let mid = (n_chunks / 2) * chunk;
        let (a, b) = slice.split_at_mut(mid);
        crate::join(
            || split_for_each(a, chunk, per_task, f),
            || split_for_each(b, chunk, per_task, f),
        );
    }

    /// Parallel chunking of mutable slices.
    pub trait ParallelSliceMut<T: Send> {
        /// Splits into chunks of `chunk_size` (last may be shorter) for
        /// parallel mutation.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
            assert!(chunk_size > 0, "chunk size must be positive");
            ParChunksMut {
                slice: self,
                chunk: chunk_size,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn join_nests() {
        let ((a, b), c) = join(|| join(|| 1, || 2), || 3);
        assert_eq!((a, b, c), (1, 2, 3));
    }

    #[test]
    fn par_chunks_mut_touches_every_element_once() {
        let mut v = vec![1u64; 10_000];
        v.par_chunks_mut(128).for_each(|c| {
            for x in c {
                *x += 1;
            }
        });
        assert!(v.iter().all(|&x| x == 2));
    }

    #[test]
    fn par_chunks_mut_with_oversized_chunk() {
        let mut v = vec![0u8; 7];
        v.par_chunks_mut(100).for_each(|c| c.fill(9));
        assert_eq!(v, vec![9; 7]);
    }

    #[test]
    fn current_num_threads_is_positive_and_stable() {
        let n = current_num_threads();
        assert!(n >= 1);
        assert_eq!(n, current_num_threads());
    }

    #[test]
    fn deep_recursion_through_the_global_pool() {
        fn fib(n: u64) -> u64 {
            if n < 12 {
                return (1..=n).fold((0, 1), |(a, b), _| (b, a + b)).0;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        assert_eq!(fib(20), 6765);
    }
}
