//! `tilt-cli` — compile and simulate OpenQASM programs on TILT machines.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match tilt_cli::run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", tilt_cli::USAGE);
            ExitCode::FAILURE
        }
    }
}
