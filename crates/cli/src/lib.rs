//! Library backing the `tilt-cli` binary.
//!
//! The command surface mirrors the LinQ toolflow (Fig. 4 of the paper):
//!
//! ```text
//! tilt-cli run      <file.qasm> [options]   # compile + simulate via the Engine session API
//! tilt-cli run      <dir> --batch [options] # a directory of circuits as one batch
//! tilt-cli compile  <file.qasm> [options]   # run the pipeline, print metrics
//! tilt-cli simulate <file.qasm> [options]   # + success rate and exec time
//! tilt-cli lint     <file.qasm> [options]   # statically verify the compiled program
//! tilt-cli qccd     <file.qasm> [options]   # route on the QCCD comparator
//! tilt-cli bench    <name|all>  [options]   # run a paper benchmark by name
//! tilt-cli serve    [options]               # JSON-lines compile service (stdin/stdout or TCP)
//! ```
//!
//! All logic lives here (string in, string out) so the whole surface is
//! unit-testable without spawning processes.

mod args;
mod commands;

pub use args::{Options, ParseArgsError};

/// Usage text printed on argument errors.
pub const USAGE: &str = "\
usage: tilt-cli <command> [arguments] [options]

commands:
  run      <file.qasm>   compile + simulate through the Engine session API
  run      <dir> --batch every .qasm in <dir> as one batch, one row per circuit
  run  <file> --stream   bounded-memory streaming compile: O(window) peak
                         memory, built for million-gate files
  compile  <file.qasm>   compile for a TILT machine and print LinQ metrics
  simulate <file.qasm>   compile, then estimate success rate and exec time
  timeline <file.qasm>   compile and draw the tape-head trajectory
  lint     <file.qasm>   compile and statically verify the program
                         invariants (--json for machine-readable output;
                         exits nonzero on any error-severity finding;
                         --stream checks the window-applicable rules
                         incrementally at O(window) memory; --scaled
                         lints the ELU-array backend instead)
  qccd     <file.qasm>   route on the QCCD comparator architecture
  scale    <file.qasm>   split across MUSIQC-style TILT modules (ELUs)
  bench    <name|all>    run a paper benchmark (adder, bv, qaoa, rcs, qft, sqrt)
  serve                  long-running JSON-lines compile service over the
                         Engine session (stdin/stdout; --listen host:port for
                         TCP; --window N caps in-flight requests)

options:
  --ions N              tape length (default: circuit width)
  --head L              laser-head size (default: 16)
  --router R            linq | stochastic | exact (default: linq)
  --max-swap-len K      cap inserted swap spans (default: L-1)
  --alpha A             Eq. 1 look-ahead decay (default: 0.9)
  --scheduler S         greedy | naive (default: greedy)
  --ions-per-trap N     QCCD trap size (default: 17)
  --elu-ions N          ions per ELU for `scale` (default: 18)
  --json                lint: emit diagnostics as a JSON array
  --emit-program        print the scheduled gate/move stream
  --emit-qasm           print the routed physical circuit as OpenQASM
  --batch               treat the run target as a directory of .qasm files
  --stream              run/lint: stream the QASM through the windowed
                        pipeline without materializing the circuit
  --scaled              lint: verify against the ELU-array backend
                        (geometry from --elu-ions/--head, as for scale)
  --stream-window N     input gates per streaming window (default: 65536)
  --window N            serve: max in-flight requests (default: 4 x threads)
  --listen HOST:PORT    serve: accept TCP connections instead of stdin/stdout
";

/// Entry point: parses `args`, dispatches, and returns the text to print.
///
/// # Errors
///
/// Returns a human-readable error string for bad arguments, unreadable
/// files, parse failures, or compilation errors.
pub fn run(args: &[String]) -> Result<String, String> {
    let (command, rest) = args.split_first().ok_or("missing command")?;
    match command.as_str() {
        "run" => commands::run(rest),
        "compile" => commands::compile(rest),
        "simulate" => commands::simulate(rest),
        "timeline" => commands::timeline(rest),
        "lint" => commands::lint(rest),
        "qccd" => commands::qccd(rest),
        "scale" => commands::scale(rest),
        "bench" => commands::bench(rest),
        "serve" => commands::serve(rest),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(format!("unknown command `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(std::string::ToString::to_string).collect()
    }

    #[test]
    fn missing_command_errors() {
        assert!(run(&[]).is_err());
    }

    #[test]
    fn unknown_command_errors() {
        let e = run(&v(&["frobnicate"])).unwrap_err();
        assert!(e.contains("frobnicate"));
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&v(&["help"])).unwrap();
        assert!(out.contains("usage:"));
    }

    #[test]
    fn bench_runs_named_benchmark() {
        let out = run(&v(&["bench", "bv", "--head", "16"])).unwrap();
        assert!(out.contains("BV"));
        assert!(out.contains("success"));
    }

    #[test]
    fn bench_rejects_unknown_name() {
        assert!(run(&v(&["bench", "nope"])).is_err());
    }

    #[test]
    fn compile_round_trips_through_a_temp_file() {
        let dir = std::env::temp_dir().join("tilt-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ghz.qasm");
        std::fs::write(
            &path,
            "OPENQASM 2.0;\nqreg q[6];\nh q[0];\ncx q[0], q[5];\n",
        )
        .unwrap();
        let out = run(&v(&["compile", path.to_str().unwrap(), "--head", "3"])).unwrap();
        assert!(out.contains("swaps"), "{out}");
        let out = run(&v(&[
            "simulate",
            path.to_str().unwrap(),
            "--head",
            "3",
            "--router",
            "exact",
        ]))
        .unwrap();
        assert!(out.contains("success"), "{out}");
        let out = run(&v(&[
            "qccd",
            path.to_str().unwrap(),
            "--ions-per-trap",
            "3",
        ]))
        .unwrap();
        assert!(out.contains("transports"), "{out}");
    }
}
