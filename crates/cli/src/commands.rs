//! Subcommand implementations (string in → report text out).
//!
//! Every simulating subcommand (`run`, `simulate`, `qccd`, `scale`,
//! `bench`) is a client of the [`tilt_engine::Engine`] session API; the
//! legacy pass-by-pass pipeline survives only where the session API
//! deliberately does not reach — the exact router (a search, not a
//! policy) and the compile-only introspection commands.

use crate::args::{Options, RouterChoice, ServeOptions};
use std::fmt::Write as _;
use tilt_circuit::{qasm, Circuit};
use tilt_compiler::route::exact::optimal_route;
use tilt_compiler::schedule::schedule;
use tilt_compiler::{CompileOutput, DeviceSpec, InitialMapping, TiltProgram};
use tilt_engine::{Backend, Engine, RunReport};
use tilt_qccd::QccdSpec;
use tilt_report::{fmt_success, Table};
use tilt_sim::{estimate_ideal_success, GateTimeModel, NoiseModel};

/// Loads the target as a QASM file.
fn load_circuit(opts: &Options) -> Result<Circuit, String> {
    let source = std::fs::read_to_string(&opts.target)
        .map_err(|e| format!("cannot read `{}`: {e}", opts.target))?;
    qasm::parse_qasm(&source).map_err(|e| e.to_string())
}

fn device(opts: &Options, circuit: &Circuit) -> Result<DeviceSpec, String> {
    let ions = opts.ions.unwrap_or(circuit.n_qubits());
    DeviceSpec::new(ions, opts.head).map_err(|e| e.to_string())
}

/// A TILT engine session configured from the command-line options.
fn tilt_engine(opts: &Options, spec: DeviceSpec) -> Result<Engine, String> {
    let mut builder = Engine::builder()
        .backend(Backend::Tilt(spec))
        .router(opts.router_kind())
        .scheduler(opts.scheduler);
    if let Some(method) = opts.method {
        builder = builder.simulate(method);
    }
    builder.build().map_err(|e| e.to_string())
}

/// Renders the logical-simulation line of a report, when present.
fn describe_sim(report: &RunReport) -> String {
    let Some(sim) = &report.sim else {
        return String::new();
    };
    let mut text = format!("simulated ({}):", sim.simulator);
    if sim.measurements == 0 {
        text.push_str(" no measurements in circuit");
    } else {
        let _ = write!(
            text,
            " {} ({} measurements",
            sim.bitstring, sim.measurements
        );
        if let (Some(d), Some(r)) = (sim.deterministic_measurements, sim.random_measurements) {
            let _ = write!(text, ": {d} deterministic, {r} random");
        }
        text.push(')');
    }
    text.push('\n');
    text
}

/// Runs the *compile-only* pipeline per the options (including the
/// exact router, which bypasses the policy-based routing entirely).
/// The compile-only commands (`compile`, `timeline`) stay on the pass
/// layer deliberately: `Engine::run` would also walk the scheduled
/// program for success/exec-time estimates they discard.
fn run_pipeline(opts: &Options, circuit: &Circuit) -> Result<CompileOutput, String> {
    let spec = device(opts, circuit)?;
    if opts.router == RouterChoice::Exact {
        // Exact routing: decompose → optimal route → lower swaps → schedule.
        let native = tilt_compiler::decompose::decompose(circuit);
        let initial = InitialMapping::Identity.build(&native, spec.n_ions());
        let routed = optimal_route(&native, spec, &initial, &opts.exact_config())
            .map_err(|e| e.to_string())?;
        let lowered = tilt_compiler::decompose::decompose(&routed.circuit);
        let program = schedule(&lowered, spec, opts.scheduler);
        let report = tilt_compiler::CompileReport {
            swap_count: routed.swap_count,
            opposing_swap_count: routed.opposing_swap_count,
            opposing_ratio: routed.opposing_ratio(),
            move_count: program.move_count(),
            move_distance_ions: program.move_distance_ions(),
            native_gate_count: program.gate_count(),
            native_two_qubit_count: program.two_qubit_gate_count(),
            t_decompose: std::time::Duration::ZERO,
            t_swap: std::time::Duration::ZERO,
            t_move: std::time::Duration::ZERO,
        };
        return Ok(CompileOutput {
            program,
            routed,
            report,
        });
    }
    let mut compiler = tilt_compiler::Compiler::new(spec);
    compiler
        .router(opts.router_kind())
        .scheduler(opts.scheduler);
    compiler.compile(circuit).map_err(|e| e.to_string())
}

fn describe(out: &CompileOutput, program: &TiltProgram) -> String {
    let r = &out.report;
    let mut text = String::new();
    let _ = writeln!(
        text,
        "device: {} ions, head {}",
        program.spec().n_ions(),
        program.spec().head_size()
    );
    let _ = writeln!(
        text,
        "swaps: {} (opposing {}, ratio {:.2})",
        r.swap_count, r.opposing_swap_count, r.opposing_ratio
    );
    let _ = writeln!(
        text,
        "moves: {} (distance {} ion spacings)",
        r.move_count, r.move_distance_ions
    );
    let _ = writeln!(
        text,
        "native gates: {} ({} two-qubit)",
        r.native_gate_count, r.native_two_qubit_count
    );
    text
}

fn emit_extras(opts: &Options, out: &CompileOutput) -> String {
    let mut text = String::new();
    if opts.emit_qasm {
        text.push_str("\n-- routed physical circuit (OpenQASM) --\n");
        text.push_str(&qasm::to_qasm(&out.routed.circuit));
    }
    if opts.emit_program {
        text.push_str("\n-- scheduled program --\n");
        let _ = write!(text, "{}", out.program);
    }
    text
}

/// `tilt-cli compile <file.qasm>`
pub fn compile(args: &[String]) -> Result<String, String> {
    let opts = Options::parse(args).map_err(|e| e.to_string())?;
    let circuit = load_circuit(&opts)?;
    let out = run_pipeline(&opts, &circuit)?;
    let mut text = format!("compiled `{}`: {}\n", opts.target, circuit.stats());
    text.push_str(&describe(&out, &out.program));
    text.push_str(&emit_extras(&opts, &out));
    Ok(text)
}

/// The numbers `simulate` prints, whichever path produced them.
struct SimulateOutcome {
    out: CompileOutput,
    success: f64,
    log10_success: f64,
    final_quanta: f64,
    moves: usize,
    exec_time_us: f64,
}

/// `tilt-cli simulate <file.qasm>`
pub fn simulate(args: &[String]) -> Result<String, String> {
    let opts = Options::parse(args).map_err(|e| e.to_string())?;
    let circuit = load_circuit(&opts)?;
    let noise = NoiseModel::default();
    let times = GateTimeModel::default();
    let o = if opts.router == RouterChoice::Exact {
        // The exact router bypasses the session API; estimate its
        // output with the free-function estimators.
        use tilt_sim::{estimate_success, execution_time_us, ExecTimeModel};
        let out = run_pipeline(&opts, &circuit)?;
        let s = estimate_success(&out.program, &noise, &times);
        let exec_time_us = execution_time_us(&out.program, &times, &ExecTimeModel::default());
        SimulateOutcome {
            out,
            success: s.success,
            log10_success: s.log10_success(),
            final_quanta: s.final_quanta,
            moves: s.moves,
            exec_time_us,
        }
    } else {
        let spec = device(&opts, &circuit)?;
        let report = tilt_engine(&opts, spec)?
            .run(&circuit)
            .map_err(|e| e.to_string())?;
        let s = report.tilt_success().expect("Tilt backend").report;
        let (success, log10_success, exec_time_us) =
            (report.success, report.log10_success(), report.exec_time_us);
        let tilt_engine::RunDetail::Tilt { output: out, .. } = report.detail else {
            unreachable!("a Tilt backend produces Tilt detail");
        };
        SimulateOutcome {
            out,
            success,
            log10_success,
            final_quanta: s.final_quanta,
            moves: s.moves,
            exec_time_us,
        }
    };

    let ideal = estimate_ideal_success(&circuit, &noise, &times);
    let mut text = format!("simulated `{}`: {}\n", opts.target, circuit.stats());
    text.push_str(&describe(&o.out, &o.out.program));
    let _ = writeln!(
        text,
        "success: {} (log10 {:.2}), ideal TI {}",
        fmt_success(o.success),
        o.log10_success,
        fmt_success(ideal.success)
    );
    let _ = writeln!(
        text,
        "heat: {:.2} quanta after {} moves",
        o.final_quanta, o.moves
    );
    let _ = writeln!(text, "execution time: {:.3} ms", o.exec_time_us / 1e3);
    text.push_str(&emit_extras(&opts, &o.out));
    Ok(text)
}

/// `tilt-cli lint <file.qasm>` — compile for a TILT machine (or, under
/// `--scaled`, an ELU array) and run the static program-invariant
/// verifier over the compiled artifacts.
///
/// Human output is one line per diagnostic plus a summary; `--json`
/// emits the diagnostics as a JSON array (empty when clean). Any
/// error-severity finding makes the command fail, so the exit code is
/// the lint verdict.
pub fn lint(args: &[String]) -> Result<String, String> {
    let opts = Options::parse(args).map_err(|e| e.to_string())?;
    if opts.router == RouterChoice::Exact {
        return Err(
            "`lint` drives the session API; use `compile` to inspect --router exact output".into(),
        );
    }
    if opts.stream {
        return lint_stream(&opts);
    }
    let circuit = load_circuit(&opts)?;
    if opts.scaled {
        return lint_scaled(&opts, &circuit);
    }
    let spec = device(&opts, &circuit)?;
    // Warn, not strict: lint's job is to *report* every finding, then
    // decide the exit code itself (strict would stop at the first).
    let report = Engine::builder()
        .backend(Backend::Tilt(spec))
        .router(opts.router_kind())
        .scheduler(opts.scheduler)
        .verify(tilt_engine::VerifyLevel::Warn)
        .build()
        .map_err(|e| e.to_string())?
        .run(&circuit)
        .map_err(|e| e.to_string())?;
    let clean_note = format!(
        "clean ({} native ops verified)",
        report.compile.native_gate_count
    );
    finish_lint(&opts, &report.diagnostics, &clean_note)
}

/// The ELU-array geometry a `--scaled` lint describes (same flags and
/// head clamp as the `scale` command).
fn scale_spec(opts: &Options) -> Result<tilt_scale::ScaleSpec, String> {
    tilt_scale::ScaleSpec::new(opts.elu_ions, opts.head.min(opts.elu_ions))
        .map_err(|e| e.to_string())
}

/// The `--scaled` flavour of monolithic `lint`: compile across the ELU
/// array and run the full scaled rule pack (`scaled/comm-slot-budget`,
/// `scaled/measured-unreset`, plus the TILT pack per ELU).
fn lint_scaled(opts: &Options, circuit: &Circuit) -> Result<String, String> {
    let spec = scale_spec(opts)?;
    let report = Engine::builder()
        .backend(Backend::Scaled(spec))
        .verify(tilt_engine::VerifyLevel::Warn)
        .build()
        .map_err(|e| e.to_string())?
        .run(circuit)
        .map_err(|e| e.to_string())?;
    let elus = match &report.detail {
        tilt_engine::RunDetail::Scaled { program, .. } => program.elu_outputs.len(),
        _ => unreachable!("a Scaled backend produces Scaled detail"),
    };
    let clean_note = format!(
        "clean ({} native ops across {elus} ELUs verified)",
        report.compile.native_gate_count
    );
    finish_lint(opts, &report.diagnostics, &clean_note)
}

/// The `--stream` flavour of `lint`: stream the source through the
/// bounded-memory windowed pipeline and run the window-applicable
/// rules incrementally over every delivered increment, with global op
/// indices — the diagnostics match what the monolithic walk would
/// report for those rules, at O(window) peak memory. On the TILT
/// backend that is `tilt/head-span`; under `--scaled` it is the per-op
/// half of `scaled/comm-slot-budget` plus `tilt/head-span` per ELU.
/// The whole-program rules (`tilt/swap-chain`, `tilt/mapping-bijection`,
/// `tilt/schedule-order`, the EPR ledger, `scaled/measured-unreset`)
/// need finished artifacts and only run on the monolithic path.
fn lint_stream(opts: &Options) -> Result<String, String> {
    if opts.method.is_some() || opts.emit_program || opts.emit_qasm || opts.batch {
        return Err("`lint --stream` takes none of --method/--emit-*/--batch".into());
    }
    if opts.scaled {
        return lint_stream_scaled(opts);
    }
    let width = probe_stream_width(&opts.target)?;
    let ions = opts.ions.unwrap_or(width);
    let spec = DeviceSpec::new(ions, opts.head.min(ions)).map_err(|e| e.to_string())?;
    // No `.verify(...)`: streaming runs reject the whole-program
    // verifier by construction; the windowed rule runs in the sink.
    let engine = Engine::builder()
        .backend(Backend::Tilt(spec))
        .router(opts.router_kind())
        .scheduler(opts.scheduler)
        .build()
        .map_err(|e| e.to_string())?;
    let window = opts
        .stream_window
        .unwrap_or(tilt_engine::DEFAULT_STREAM_WINDOW);
    let mut verifier = tilt_compiler::StreamVerifier::new(spec);
    let mut sink = |_shard: usize, chunk: &[tilt_compiler::TiltOp]| {
        verifier.push(chunk);
    };
    let outcome = engine
        .run_streaming_qasm(open_stream(&opts.target)?, window, &mut sink)
        .map_err(|e| e.to_string())?;
    let ops_seen = verifier.ops_seen();
    let clean_note = format!(
        "clean ({ops_seen} ops stream-verified in {} increments, window {window})",
        outcome.increments
    );
    finish_lint(opts, &verifier.finish(), &clean_note)
}

/// `lint --stream --scaled`: the sharded streaming compile delivers
/// per-ELU op increments; each feeds the incremental half of
/// `scaled/comm-slot-budget` (per-ELU gate indices, as the monolithic
/// walk assigns them) and a per-ELU `tilt/head-span` verifier whose
/// messages carry the same `elu N:` prefix the monolithic scaled pack
/// uses for its per-ELU TILT findings.
fn lint_stream_scaled(opts: &Options) -> Result<String, String> {
    let width = probe_stream_width(&opts.target)?;
    let spec = scale_spec(opts)?;
    let elu_spec =
        DeviceSpec::new(spec.ions_per_elu(), spec.head_size()).map_err(|e| e.to_string())?;
    let n_elus = spec.elus_for(width);
    let engine = Engine::builder()
        .backend(Backend::Scaled(spec))
        .build()
        .map_err(|e| e.to_string())?;
    let window = opts
        .stream_window
        .unwrap_or(tilt_engine::DEFAULT_STREAM_WINDOW);
    let mut budget = tilt_scale::StreamScaledVerifier::new(spec.data_capacity(), n_elus);
    let mut heads: Vec<tilt_compiler::StreamVerifier> = (0..n_elus)
        .map(|_| tilt_compiler::StreamVerifier::new(elu_spec))
        .collect();
    let mut sink = |elu: usize, chunk: &[tilt_compiler::TiltOp]| {
        budget.push(elu, chunk);
        heads[elu].push(chunk);
    };
    let outcome = engine
        .run_streaming_qasm(open_stream(&opts.target)?, window, &mut sink)
        .map_err(|e| e.to_string())?;
    let gates_seen = budget.gates_seen();
    let mut diags = budget.finish();
    for (e, head) in heads.into_iter().enumerate() {
        diags.extend(head.finish().into_iter().map(|mut d| {
            d.message = format!("elu {e}: {}", d.message);
            d
        }));
    }
    let clean_note = format!(
        "clean ({gates_seen} gates across {n_elus} ELUs stream-verified in {} increments, \
         window {window})",
        outcome.increments
    );
    finish_lint(opts, &diags, &clean_note)
}

/// Shared lint epilogue: renders the findings per the output flags
/// (JSON array under `--json`, one line per diagnostic plus a summary
/// otherwise) and turns error-severity findings into a nonzero exit.
fn finish_lint(
    opts: &Options,
    diags: &[tilt_compiler::Diagnostic],
    clean_note: &str,
) -> Result<String, String> {
    let errors = diags
        .iter()
        .filter(|d| d.severity == tilt_engine::Severity::Error)
        .count();
    let text = if opts.json {
        let arr: Vec<tilt_report::Json> = diags
            .iter()
            .map(|d| {
                tilt_report::Json::object()
                    .set("rule", d.rule)
                    .set("severity", d.severity.to_string())
                    .set("op_index", d.op_index as f64)
                    .set("message", d.message.as_str())
            })
            .collect();
        format!("{}\n", tilt_report::Json::Arr(arr).render())
    } else {
        let mut text = String::new();
        for d in diags {
            let _ = writeln!(text, "{d}");
        }
        let _ = writeln!(
            text,
            "lint `{}`: {}",
            opts.target,
            if diags.is_empty() {
                clean_note.to_string()
            } else {
                format!("{} diagnostic(s), {} error(s)", diags.len(), errors)
            }
        );
        text
    };
    if errors > 0 {
        Err(text)
    } else {
        Ok(text)
    }
}

/// `tilt-cli timeline <file.qasm>`
pub fn timeline(args: &[String]) -> Result<String, String> {
    let opts = Options::parse(args).map_err(|e| e.to_string())?;
    let circuit = load_circuit(&opts)?;
    let out = run_pipeline(&opts, &circuit)?;
    let mut text = format!("timeline of `{}`\n", opts.target);
    text.push_str(&tilt_compiler::viz::render_timeline(&out.program));
    Ok(text)
}

/// `tilt-cli scale <file.qasm>`
pub fn scale(args: &[String]) -> Result<String, String> {
    let opts = Options::parse(args).map_err(|e| e.to_string())?;
    let circuit = load_circuit(&opts)?;
    let spec = tilt_scale::ScaleSpec::new(opts.elu_ions, opts.head.min(opts.elu_ions))
        .map_err(|e| e.to_string())?;
    let report = Engine::builder()
        .backend(Backend::Scaled(spec))
        .build()
        .map_err(|e| e.to_string())?
        .run(&circuit)
        .map_err(|e| e.to_string())?;
    let scaled = report.scale_report().expect("Scaled backend");
    let elus = match &report.detail {
        tilt_engine::RunDetail::Scaled { program, .. } => program.elu_outputs.len(),
        _ => unreachable!("a Scaled backend produces Scaled detail"),
    };
    let mut text = format!(
        "modular `{}`: {} ELUs of {} ions (head {})\n",
        opts.target,
        elus,
        spec.ions_per_elu(),
        spec.head_size()
    );
    let _ = writeln!(
        text,
        "remote gates: {} (EPR pairs), local swaps: {}, local moves: {}",
        scaled.remote_gates, report.compile.swap_count, report.compile.move_count
    );
    let _ = writeln!(
        text,
        "success: {} (log10 {:.2}), makespan {:.3} ms",
        fmt_success(report.success),
        report.log10_success(),
        report.exec_time_us / 1e3
    );
    Ok(text)
}

/// `tilt-cli qccd <file.qasm>`
pub fn qccd(args: &[String]) -> Result<String, String> {
    let opts = Options::parse(args).map_err(|e| e.to_string())?;
    let circuit = load_circuit(&opts)?;
    let spec =
        QccdSpec::for_qubits(circuit.n_qubits(), opts.ions_per_trap).map_err(|e| e.to_string())?;
    let report = Engine::builder()
        .backend(Backend::Qccd(spec))
        .build()
        .map_err(|e| e.to_string())?
        .run(&circuit)
        .map_err(|e| e.to_string())?;
    let q = report.qccd_report().expect("Qccd backend");
    let mut text = format!(
        "QCCD `{}`: {} traps × {} capacity\n",
        opts.target,
        spec.n_traps(),
        spec.capacity()
    );
    let _ = writeln!(
        text,
        "transports: {} ({} shuttle segments), cooling rounds: {}",
        q.transports, q.shuttle_segments, q.cooling_rounds
    );
    let _ = writeln!(
        text,
        "success: {} (peak heat {:.1} quanta)",
        fmt_success(report.success),
        q.peak_quanta
    );
    Ok(text)
}

/// One table row from `(swaps, moves, success, exec µs)` or an error.
fn metric_row(name: &str, metrics: Result<(usize, usize, f64, f64), String>) -> [String; 5] {
    match metrics {
        Ok((swaps, moves, success, exec_us)) => [
            name.to_string(),
            swaps.to_string(),
            moves.to_string(),
            fmt_success(success),
            format!("{:.3}", exec_us / 1e6),
        ],
        Err(e) => [
            name.to_string(),
            "-".into(),
            "-".into(),
            format!("error: {e}"),
            "-".into(),
        ],
    }
}

/// One table row for a batch/bench report.
fn report_row(name: &str, report: &Result<RunReport, tilt_engine::TiltError>) -> [String; 5] {
    metric_row(
        name,
        report
            .as_ref()
            .map(|r| {
                (
                    r.compile.swap_count,
                    r.compile.move_count,
                    r.success,
                    r.exec_time_us,
                )
            })
            .map_err(std::string::ToString::to_string),
    )
}

/// `tilt-cli run <file.qasm>` — one circuit through the session API.
/// `tilt-cli run <dir> --batch` — every `.qasm` in the directory as one
/// batch, one table row per circuit.
pub fn run(args: &[String]) -> Result<String, String> {
    let opts = Options::parse(args).map_err(|e| e.to_string())?;
    if opts.router == RouterChoice::Exact {
        return Err(
            "`run` drives the session API; use `compile`/`simulate` for --router exact".into(),
        );
    }
    if opts.stream {
        return run_stream_file(&opts);
    }
    if opts.batch {
        return run_batch_dir(&opts);
    }
    let circuit = load_circuit(&opts)?;
    let spec = device(&opts, &circuit)?;
    let report = tilt_engine(&opts, spec)?
        .run(&circuit)
        .map_err(|e| e.to_string())?;
    let out = report.tilt_output().expect("Tilt backend");
    let mut text = format!("ran `{}`: {}\n", opts.target, circuit.stats());
    text.push_str(&describe(out, &out.program));
    let _ = writeln!(
        text,
        "success: {} (log10 {:.2}), execution time: {:.3} ms",
        fmt_success(report.success),
        report.log10_success(),
        report.exec_time_us / 1e3
    );
    text.push_str(&describe_sim(&report));
    Ok(text)
}

/// Reads just the QASM prologue of `path` to learn the register width
/// (the `qreg` must precede the first gate, so this touches only the
/// header — cheap even on a million-gate file).
fn probe_stream_width(path: &str) -> Result<usize, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    qasm::QasmStream::new(std::io::BufReader::new(file))
        .require_n_qubits()
        .map_err(|e| format!("{path}: {e}"))
}

/// Opens `path` for the actual streaming pass.
fn open_stream(path: &str) -> Result<std::io::BufReader<std::fs::File>, String> {
    std::fs::File::open(path)
        .map(std::io::BufReader::new)
        .map_err(|e| format!("cannot read `{path}`: {e}"))
}

/// The `--stream` flavour of `run`: push the QASM file through the
/// bounded-memory windowed pipeline without ever materializing the
/// circuit or the scheduled program. A header probe sizes the device,
/// then the file is re-read as the gate stream; peak memory is
/// O(window), not O(gates).
fn run_stream_file(opts: &Options) -> Result<String, String> {
    if opts.batch {
        return Err("--stream runs one file; it cannot be combined with --batch".into());
    }
    if opts.method.is_some() {
        return Err(
            "--stream never materializes the logical circuit, so it cannot simulate; \
             drop --method or drop --stream"
                .into(),
        );
    }
    if opts.emit_program || opts.emit_qasm {
        return Err(
            "--stream discards each window after delivery; --emit-program/--emit-qasm \
             need the monolithic path"
                .into(),
        );
    }
    let width = probe_stream_width(&opts.target)?;
    let ions = opts.ions.unwrap_or(width);
    let spec = DeviceSpec::new(ions, opts.head.min(ions)).map_err(|e| e.to_string())?;
    let engine = tilt_engine(opts, spec)?;
    let window = opts
        .stream_window
        .unwrap_or(tilt_engine::DEFAULT_STREAM_WINDOW);
    let mut ops = 0usize;
    let mut sink = |_shard: usize, chunk: &[tilt_compiler::TiltOp]| {
        ops += chunk.len();
    };
    let outcome = engine
        .run_streaming_qasm(open_stream(&opts.target)?, window, &mut sink)
        .map_err(|e| e.to_string())?;
    let c = &outcome.compile;
    let mut text = format!(
        "streamed `{}`: {} input gates in {} increments (window {})\n",
        opts.target, outcome.input_gate_count, outcome.increments, window
    );
    let _ = writeln!(
        text,
        "device: {} ions, head {}",
        spec.n_ions(),
        spec.head_size()
    );
    let _ = writeln!(
        text,
        "swaps: {} (opposing {}), moves: {} (distance {} ion spacings)",
        c.swap_count, c.opposing_swap_count, c.move_count, c.move_distance
    );
    let _ = writeln!(
        text,
        "native gates: {} ({} two-qubit), scheduled ops delivered: {ops}",
        c.native_gate_count, c.native_two_qubit_count
    );
    let _ = writeln!(
        text,
        "success: {} (log10 {:.2}), execution time: {:.3} ms",
        fmt_success(outcome.success),
        outcome.log10_success(),
        outcome.exec_time_us / 1e3
    );
    Ok(text)
}

/// The `--batch` flavour of `run`: one engine session, a directory of
/// circuits, one table row per circuit in directory order.
fn run_batch_dir(opts: &Options) -> Result<String, String> {
    let entries = std::fs::read_dir(&opts.target)
        .map_err(|e| format!("cannot read directory `{}`: {e}", opts.target))?;
    let mut paths: Vec<std::path::PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "qasm"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no .qasm files in `{}`", opts.target));
    }

    let mut names = Vec::with_capacity(paths.len());
    let mut circuits = Vec::with_capacity(paths.len());
    for path in &paths {
        let source = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
        let circuit = qasm::parse_qasm(&source).map_err(|e| format!("{}: {e}", path.display()))?;
        names.push(
            path.file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| path.display().to_string()),
        );
        circuits.push(circuit);
    }

    // One session sized for the widest circuit (or --ions) serves the
    // whole batch, with the head clamped to the tape so the default
    // `--head 16` works on narrow batches; individual misfits surface
    // as per-row errors.
    let widest = circuits.iter().map(Circuit::n_qubits).max().unwrap_or(1);
    let ions = opts.ions.unwrap_or(widest);
    let spec = DeviceSpec::new(ions, opts.head.min(ions)).map_err(|e| e.to_string())?;
    let engine = tilt_engine(opts, spec)?;

    let mut table = Table::new(["circuit", "swaps", "moves", "success", "exec(s)"]);
    engine.run_batch_streaming(circuits, |i, report| {
        table.row(report_row(&names[i], &report));
    });
    let mut text = format!(
        "batch of {} circuits on {} ions, head {}\n",
        names.len(),
        spec.n_ions(),
        spec.head_size()
    );
    text.push_str(&table.render());
    Ok(text)
}

/// Cross-platform SIGTERM-to-flag shim for the serve loop. On unix the
/// handler is installed through the libc `signal` symbol directly (the
/// workspace builds offline, without the `libc` crate); elsewhere the
/// flag simply never fires and shutdown is EOF / `{"op":"shutdown"}`.
mod sigterm {
    use std::sync::atomic::{AtomicBool, Ordering};

    static FLAG: AtomicBool = AtomicBool::new(false);

    #[cfg(unix)]
    extern "C" fn on_term(_signum: i32) {
        FLAG.store(true, Ordering::SeqCst);
    }

    #[cfg(unix)]
    pub fn install() -> &'static AtomicBool {
        const SIGTERM: i32 = 15;
        extern "C" {
            // `sighandler_t signal(int, sighandler_t)` — handlers are
            // pointer-sized, so `usize` carries the previous handler.
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        unsafe {
            signal(SIGTERM, on_term);
        }
        &FLAG
    }

    #[cfg(not(unix))]
    pub fn install() -> &'static AtomicBool {
        &FLAG
    }
}

/// The engine prototype a `serve` invocation describes.
fn serve_builder(opts: &ServeOptions) -> Result<tilt_engine::EngineBuilder, String> {
    let spec = DeviceSpec::new(opts.ions, opts.head.min(opts.ions)).map_err(|e| e.to_string())?;
    Ok(Engine::builder()
        .backend(Backend::Tilt(spec))
        .router(opts.router_kind())
        .scheduler(opts.scheduler))
}

/// Process-wide overload policy shared by every serve loop: one
/// admission budget across all connections, one default deadline.
#[derive(Clone, Default)]
pub(crate) struct ServePolicy {
    admission: Option<std::sync::Arc<tilt_engine::AdmissionControl>>,
    default_deadline: Option<std::time::Duration>,
}

impl ServePolicy {
    fn from_opts(opts: &ServeOptions) -> ServePolicy {
        // 0 on either axis means "that axis unlimited"; both 0 means no
        // admission control at all.
        let admission = (opts.max_in_flight > 0 || opts.max_in_flight_bytes > 0).then(|| {
            let requests = if opts.max_in_flight > 0 {
                opts.max_in_flight
            } else {
                usize::MAX
            };
            let bytes = if opts.max_in_flight_bytes > 0 {
                opts.max_in_flight_bytes
            } else {
                usize::MAX
            };
            std::sync::Arc::new(tilt_engine::AdmissionControl::new(requests, bytes))
        });
        let default_deadline = (opts.default_deadline_ms > 0)
            .then(|| std::time::Duration::from_millis(opts.default_deadline_ms));
        ServePolicy {
            admission,
            default_deadline,
        }
    }

    fn apply(&self, mut service: tilt_engine::Service) -> tilt_engine::Service {
        if let Some(admission) = &self.admission {
            service = service.with_admission(std::sync::Arc::clone(admission));
        }
        service.with_default_deadline(self.default_deadline)
    }
}

/// Arms the engine's fault-injection plan from `TILT_FAULT_PLAN` (only
/// compiled in under the `faults` feature — the CI chaos smoke builds
/// it; production builds have no seams to arm).
#[cfg(feature = "faults")]
fn arm_fault_plan() -> Result<(), String> {
    let Ok(spec) = std::env::var("TILT_FAULT_PLAN") else {
        return Ok(());
    };
    if spec.is_empty() {
        return Ok(());
    }
    let plan = tilt_engine::faults::parse_plan(&spec)
        .map_err(|e| format!("invalid TILT_FAULT_PLAN: {e}"))?;
    eprintln!("tilt serve: fault plan armed: {spec}");
    // The guard would disarm the plan on drop; the serve process keeps
    // it for its whole life.
    std::mem::forget(tilt_engine::faults::install(plan));
    Ok(())
}

/// `tilt-cli serve [--ions N] [--head L] [--window W] [--listen addr]
/// [--cache-dir DIR]`
///
/// Runs the JSON-lines compile service over stdin/stdout (the default)
/// or a TCP listener (`--listen host:port`, one service loop per
/// connection). Responses go to the wire as they complete; the exit
/// summary goes to stderr so stdout stays pure protocol.
///
/// One content-addressed compile cache backs the whole process (all
/// connections in TCP mode); `--cache-dir` additionally restores its
/// snapshot at startup (entries failing digest verification are
/// dropped individually) and writes it back at drain.
pub fn serve(args: &[String]) -> Result<String, String> {
    let opts = ServeOptions::parse(args).map_err(|e| e.to_string())?;
    let builder = serve_builder(&opts)?;
    #[cfg(feature = "faults")]
    arm_fault_plan()?;
    let policy = ServePolicy::from_opts(&opts);
    // One process-wide cache: the session engine, every per-request
    // override engine, and every TCP connection share it.
    let cache = std::sync::Arc::new(tilt_engine::CompileCache::default());
    let persist = opts.cache_dir.as_deref().map(std::path::PathBuf::from);
    if let Some(dir) = &persist {
        match cache.load(dir) {
            Ok((loaded, rejected)) if loaded > 0 || rejected > 0 => eprintln!(
                "tilt serve: compile cache: restored {loaded} entries from {}{}",
                dir.display(),
                if rejected > 0 {
                    format!(" ({rejected} corrupt/stale entries rejected)")
                } else {
                    String::new()
                }
            ),
            Ok(_) => {}
            Err(e) => eprintln!(
                "tilt serve: compile cache: cannot read {}: {e} (starting cold)",
                dir.display()
            ),
        }
    }
    let builder = builder.compile_cache(cache.clone());
    // Validate the session config before any I/O so a bad --ions/--head
    // fails fast with a usage error.
    tilt_engine::Service::new(builder.clone()).map_err(|e| e.to_string())?;
    let flag = sigterm::install();
    let out = match &opts.listen {
        None => serve_stdio(
            builder,
            opts.window,
            policy,
            flag,
            &cache,
            persist.as_deref(),
        ),
        Some(addr) => serve_tcp(
            builder,
            addr,
            opts.window,
            policy,
            flag,
            &cache,
            persist.as_deref(),
        ),
    }?;
    snapshot_cache(&cache, persist.as_deref());
    Ok(out)
}

/// Writes the compile-cache snapshot when persistence is configured.
fn snapshot_cache(cache: &tilt_engine::CompileCache, dir: Option<&std::path::Path>) {
    let Some(dir) = dir else { return };
    match cache.save(dir) {
        Ok(written) => eprintln!(
            "tilt serve: compile cache: saved {written} entries to {}",
            dir.display()
        ),
        Err(e) => eprintln!(
            "tilt serve: compile cache: cannot write {}: {e}",
            dir.display()
        ),
    }
}

/// The stdin/stdout loop, on a worker thread so SIGTERM works even
/// while the loop is blocked reading idle input. glibc's `signal()`
/// installs BSD (`SA_RESTART`) semantics, so a blocked `read(2)`
/// restarts after the handler runs and the in-loop flag check never
/// executes; the main thread polls the flag instead. By the
/// flush-before-blocking rule, a loop blocked on input has **zero**
/// pending responses, so exiting the process at that point loses
/// nothing.
fn serve_stdio(
    builder: tilt_engine::EngineBuilder,
    window: usize,
    policy: ServePolicy,
    flag: &'static std::sync::atomic::AtomicBool,
    cache: &tilt_engine::CompileCache,
    persist: Option<&std::path::Path>,
) -> Result<String, String> {
    use std::sync::atomic::Ordering;
    let worker = std::thread::spawn(move || {
        let mut service = policy.apply(
            tilt_engine::Service::new(builder)
                .expect("config validated before the thread spawned")
                .with_window(window),
        );
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        service
            .serve(stdin.lock(), stdout.lock(), Some(flag))
            .map_err(|e| format!("service I/O error: {e}"))
    });
    while !worker.is_finished() {
        if flag.load(Ordering::SeqCst) {
            // Grace period: a line mid-compile finishes, flushes, and
            // the loop notices the flag and returns — then we can
            // print its real summary. A loop blocked on idle input
            // never returns (restarted read), but by construction has
            // nothing buffered, so exiting directly is lossless.
            // SIGTERM means bounded shutdown: a compile still running
            // 2 s after the signal forfeits its response.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
            while !worker.is_finished() && std::time::Instant::now() < deadline {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            if !worker.is_finished() {
                // Either genuinely idle (blocked read, nothing
                // buffered — lossless) or a compile outlasted the
                // grace period (its response is forfeit). We cannot
                // tell which from here, so say so. The cache snapshot
                // still happens — warm restarts are the point of
                // persistence, and SIGTERM restarts are the common
                // case under an orchestrator.
                eprintln!(
                    "tilt serve: SIGTERM — grace period expired, exiting \
                     (an in-flight response, if any, is forfeit)"
                );
                snapshot_cache(cache, persist);
                std::process::exit(0);
            }
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(30));
    }
    let summary = worker.join().map_err(|_| "service thread panicked")??;
    eprintln!("{}", summary_line(&summary));
    Ok(String::new())
}

fn summary_line(summary: &tilt_engine::ServiceSummary) -> String {
    let s = &summary.stats;
    let c = &summary.cache;
    format!(
        "tilt serve: {} responses ({} ok, {} errors), shed {} overloaded / {} deadline, \
         p50 {} µs, p99 {} µs, max in-flight {}, \
         cache {}/{} hits ({:.1}%), {} entries ({:?})",
        s.served,
        s.ok,
        s.errors,
        s.shed_overloaded,
        s.shed_deadline,
        s.p50_us(),
        s.p99_us(),
        s.max_in_flight,
        c.hits,
        c.hits + c.misses,
        100.0 * c.hit_rate(),
        c.entries,
        summary.cause
    )
}

/// One service loop per accepted connection, each on its own thread
/// over a clone of the engine prototype.
pub(crate) fn handle_connection(
    builder: tilt_engine::EngineBuilder,
    stream: std::net::TcpStream,
    window: usize,
    policy: ServePolicy,
    flag: &'static std::sync::atomic::AtomicBool,
) -> Result<tilt_engine::ServiceSummary, String> {
    let reader = std::io::BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut service = policy.apply(
        tilt_engine::Service::new(builder)
            .map_err(|e| e.to_string())?
            .with_window(window),
    );
    service
        .serve(reader, stream, Some(flag))
        .map_err(|e| format!("service I/O error: {e}"))
}

fn serve_tcp(
    builder: tilt_engine::EngineBuilder,
    addr: &str,
    window: usize,
    policy: ServePolicy,
    flag: &'static std::sync::atomic::AtomicBool,
    cache: &tilt_engine::CompileCache,
    persist: Option<&std::path::Path>,
) -> Result<String, String> {
    use std::sync::atomic::Ordering;
    let listener =
        std::net::TcpListener::bind(addr).map_err(|e| format!("cannot listen on `{addr}`: {e}"))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    // Non-blocking accept so SIGTERM is noticed between connections.
    listener.set_nonblocking(true).map_err(|e| e.to_string())?;
    eprintln!("tilt serve: listening on {local}");
    // Each live connection: the worker thread plus a clone of its
    // socket. On SIGTERM the clones are shut down, turning each
    // worker's restarted-blocking read into EOF — the loops drain
    // their windows and return, so `join` below terminates. (glibc
    // `signal()` semantics restart blocked reads, so the flag alone
    // cannot wake an idle connection.) Finished entries are reaped
    // every accept-loop pass; otherwise the retained clones would leak
    // one fd per connection until the listener hits EMFILE.
    let mut workers: Vec<(std::thread::JoinHandle<()>, Option<std::net::TcpStream>)> = Vec::new();
    loop {
        if flag.load(Ordering::SeqCst) {
            break;
        }
        workers.retain(|(handle, _)| !handle.is_finished());
        match listener.accept() {
            Ok((stream, peer)) => {
                // The per-connection loop blocks on reads; switch the
                // socket back to blocking mode.
                stream.set_nonblocking(false).map_err(|e| e.to_string())?;
                let clone = stream.try_clone().ok();
                let builder = builder.clone();
                let policy = policy.clone();
                let handle = std::thread::spawn(move || {
                    match handle_connection(builder, stream, window, policy, flag) {
                        Ok(summary) => eprintln!("{} [{peer}]", summary_line(&summary)),
                        Err(e) => eprintln!("tilt serve: connection {peer} failed: {e}"),
                    }
                });
                workers.push((handle, clone));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            Err(e) => return Err(format!("accept failed: {e}")),
        }
    }
    // Two-phase drain. Phase 1: close only the read side, so each
    // worker sees EOF, drains its window, and still gets to *write*
    // the responses and its summary.
    for (_, stream) in &workers {
        if let Some(stream) = stream {
            let _ = stream.shutdown(std::net::Shutdown::Read);
        }
    }
    let drained = wait_all_finished(&workers, std::time::Duration::from_secs(2));
    if !drained {
        // Phase 2: a worker is stuck in a blocking write (client
        // stopped draining its socket) — sever both directions.
        for (handle, stream) in &workers {
            if !handle.is_finished() {
                if let Some(stream) = stream {
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                }
            }
        }
        if !wait_all_finished(&workers, std::time::Duration::from_secs(2)) {
            // Last resort (e.g. the socket clone was unavailable at
            // accept time): shutdown must not wedge.
            eprintln!("tilt serve: a connection did not drain within the grace period, exiting");
            snapshot_cache(cache, persist);
            std::process::exit(0);
        }
    }
    for (handle, _) in workers {
        let _ = handle.join();
    }
    Ok(format!("stopped listening on {local}\n"))
}

/// Polls until every worker thread finished or `grace` elapsed.
fn wait_all_finished(
    workers: &[(std::thread::JoinHandle<()>, Option<std::net::TcpStream>)],
    grace: std::time::Duration,
) -> bool {
    let deadline = std::time::Instant::now() + grace;
    loop {
        if workers.iter().all(|(h, _)| h.is_finished()) {
            return true;
        }
        if std::time::Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
}

/// `tilt-cli bench <name|all>`
pub fn bench(args: &[String]) -> Result<String, String> {
    let opts = Options::parse(args).map_err(|e| e.to_string())?;
    let suite = tilt_benchmarks::paper_suite();
    let selected: Vec<_> = if opts.target == "all" {
        suite
    } else {
        let wanted = opts.target.to_uppercase();
        let matched: Vec<_> = suite.into_iter().filter(|b| b.name == wanted).collect();
        if matched.is_empty() {
            return Err(format!(
                "unknown benchmark `{}` (try adder, bv, qaoa, rcs, qft, sqrt, all)",
                opts.target
            ));
        }
        matched
    };

    let mut table = Table::new(["benchmark", "swaps", "moves", "success", "exec(s)"]);
    for b in &selected {
        let head = opts.head.min(b.circuit.n_qubits());
        if opts.router == RouterChoice::Exact {
            // The exact router lives on the pass layer; estimate with
            // the free-function estimators as before the session API.
            use tilt_sim::{estimate_success, execution_time_us, ExecTimeModel};
            let mut bench_opts = opts.clone();
            bench_opts.ions = Some(b.circuit.n_qubits());
            bench_opts.head = head;
            let metrics = run_pipeline(&bench_opts, &b.circuit).map(|out| {
                let noise = NoiseModel::default();
                let times = GateTimeModel::default();
                let s = estimate_success(&out.program, &noise, &times);
                let t = execution_time_us(&out.program, &times, &ExecTimeModel::default());
                (out.report.swap_count, out.report.move_count, s.success, t)
            });
            table.row(metric_row(b.name, metrics));
        } else {
            // One session per benchmark: the suite mixes register widths.
            let spec = DeviceSpec::new(b.circuit.n_qubits(), head).map_err(|e| e.to_string())?;
            let report = tilt_engine(&opts, spec)?.run(&b.circuit);
            table.row(report_row(b.name, &report));
        }
    }
    Ok(table.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, content: &str) -> String {
        let dir = std::env::temp_dir().join("tilt-cli-cmd-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        path.to_str().unwrap().to_string()
    }

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(std::string::ToString::to_string).collect()
    }

    #[test]
    fn compile_reports_swaps_for_long_gate() {
        let path = write_temp("long.qasm", "qreg q[8];\ncx q[0], q[7];\n");
        let out = compile(&v(&[&path, "--head", "4"])).unwrap();
        assert!(out.contains("swaps: "));
        assert!(!out.contains("swaps: 0"));
    }

    #[test]
    fn compile_emit_qasm_includes_swap_gates() {
        let path = write_temp("emit.qasm", "qreg q[8];\ncx q[0], q[7];\n");
        let out = compile(&v(&[&path, "--head", "4", "--emit-qasm"])).unwrap();
        assert!(out.contains("swap q["));
    }

    #[test]
    fn simulate_prints_probability() {
        let path = write_temp("sim.qasm", "qreg q[4];\nh q[0];\ncx q[0], q[3];\n");
        let out = simulate(&v(&[&path, "--head", "4"])).unwrap();
        assert!(out.contains("success: 0."), "{out}");
    }

    #[test]
    fn missing_file_is_reported() {
        let e = compile(&v(&["/nonexistent/x.qasm"])).unwrap_err();
        assert!(e.contains("cannot read"));
    }

    #[test]
    fn bad_qasm_is_reported() {
        let path = write_temp("bad.qasm", "qreg q[2];\nwat q[0];\n");
        let e = compile(&v(&[&path])).unwrap_err();
        assert!(e.contains("wat"));
    }

    #[test]
    fn bench_all_lists_six_rows() {
        let out = bench(&v(&["all", "--head", "32"])).unwrap();
        // Header + separator + 6 rows.
        assert_eq!(out.trim().lines().count(), 8, "{out}");
    }

    #[test]
    fn lint_reports_clean_compiles() {
        let path = write_temp("lint.qasm", "qreg q[8];\nh q[0];\ncx q[0], q[7];\n");
        let out = lint(&v(&[&path, "--head", "4"])).unwrap();
        assert!(out.contains("clean"), "{out}");
        assert!(out.contains("native ops verified"), "{out}");
    }

    #[test]
    fn lint_json_emits_an_array() {
        let path = write_temp("lint-json.qasm", "qreg q[6];\ncx q[0], q[5];\n");
        let out = lint(&v(&[&path, "--head", "3", "--json"])).unwrap();
        let parsed = tilt_report::Json::parse(out.trim()).unwrap();
        assert_eq!(parsed.as_array().map(<[_]>::len), Some(0), "{out}");
    }

    #[test]
    fn lint_rejects_exact_router() {
        let path = write_temp("lint-x.qasm", "qreg q[4];\ncx q[0], q[3];\n");
        let e = lint(&v(&[&path, "--router", "exact"])).unwrap_err();
        assert!(e.contains("session API"), "{e}");
    }

    #[test]
    fn timeline_draws_head_bars() {
        let path = write_temp("tl.qasm", "qreg q[8];\ncx q[0], q[1];\ncx q[6], q[7];\n");
        let out = timeline(&v(&[&path, "--head", "4"])).unwrap();
        assert!(out.contains("####"), "{out}");
        assert!(out.contains("pos"), "{out}");
    }

    #[test]
    fn scale_reports_epr_pairs() {
        let path = write_temp("sc.qasm", "qreg q[16];\ncx q[7], q[8];\ncx q[0], q[1];\n");
        let out = scale(&v(&[&path, "--elu-ions", "10", "--head", "4"])).unwrap();
        assert!(out.contains("remote gates: 1"), "{out}");
        assert!(out.contains("2 ELUs"), "{out}");
    }

    #[test]
    fn exact_router_on_small_file() {
        let path = write_temp("exact.qasm", "qreg q[6];\ncx q[0], q[5];\n");
        let out = compile(&v(&[&path, "--head", "3", "--router", "exact"])).unwrap();
        assert!(out.contains("swaps: 2"), "{out}");
    }

    #[test]
    fn run_stream_matches_the_monolithic_numbers() {
        let src = "qreg q[8];\nh q[0];\ncx q[0], q[7];\ncx q[1], q[6];\nrz(0.25) q[3];\n";
        let path = write_temp("stream-eq.qasm", src);
        let mono = run(&v(&[&path, "--head", "4"])).unwrap();
        let streamed = run(&v(&[
            &path,
            "--head",
            "4",
            "--stream",
            "--stream-window",
            "2",
        ]))
        .unwrap();
        assert!(streamed.contains("4 input gates"), "{streamed}");
        assert!(streamed.contains("(window 2)"), "{streamed}");
        // Decision identity: the success and execution-time lines agree
        // byte for byte with the monolithic run.
        let tail = |text: &str| {
            text.lines()
                .find(|l| l.starts_with("success: "))
                .unwrap()
                .to_string()
        };
        assert_eq!(tail(&mono), tail(&streamed), "{mono}\n---\n{streamed}");
        let swaps = |text: &str| {
            text.lines()
                .find(|l| l.starts_with("swaps: "))
                .unwrap()
                .split(',')
                .next()
                .unwrap()
                .trim_end_matches(')')
                .to_string()
        };
        assert_eq!(swaps(&mono), swaps(&streamed));
    }

    #[test]
    fn run_stream_rejects_circuit_bound_flags() {
        let path = write_temp("stream-flags.qasm", "qreg q[4];\nh q[0];\n");
        for extra in [["--method", "auto"], ["--emit-program", "--json"]] {
            let mut args = vec![path.as_str(), "--stream"];
            args.extend(extra.iter().filter(|a| **a != "--json"));
            let e = run(&v(&args)).unwrap_err();
            assert!(e.contains("--stream"), "{e}");
        }
        let e = run(&v(&[&path, "--stream", "--batch"])).unwrap_err();
        assert!(e.contains("--batch"), "{e}");
    }

    #[test]
    fn lint_stream_verifies_incrementally() {
        let path = write_temp("lint-stream.qasm", "qreg q[8];\nh q[0];\ncx q[0], q[7];\n");
        let out = lint(&v(&[
            &path,
            "--head",
            "4",
            "--stream",
            "--stream-window",
            "1",
        ]))
        .unwrap();
        assert!(out.contains("clean"), "{out}");
        assert!(out.contains("stream-verified"), "{out}");
        assert!(out.contains("increments"), "{out}");
    }

    #[test]
    fn lint_stream_json_emits_an_array() {
        let path = write_temp("lint-stream-json.qasm", "qreg q[6];\ncx q[0], q[5];\n");
        let out = lint(&v(&[&path, "--head", "3", "--stream", "--json"])).unwrap();
        let parsed = tilt_report::Json::parse(out.trim()).unwrap();
        assert_eq!(parsed.as_array().map(<[_]>::len), Some(0), "{out}");
    }

    #[test]
    fn lint_scaled_runs_the_scaled_rule_pack() {
        // Crosses an ELU boundary (10-ion ELUs hold 8 data ions), so a
        // remote gate and both ELUs' artifacts are verified.
        let path = write_temp(
            "lint-scaled.qasm",
            "qreg q[16];\ncx q[7], q[8];\ncx q[0], q[1];\n",
        );
        let out = lint(&v(&[&path, "--scaled", "--elu-ions", "10", "--head", "4"])).unwrap();
        assert!(out.contains("clean"), "{out}");
        assert!(out.contains("2 ELUs verified"), "{out}");
    }

    #[test]
    fn lint_stream_scaled_verifies_per_elu_increments() {
        let path = write_temp(
            "lint-stream-scaled.qasm",
            "qreg q[16];\ncx q[7], q[8];\ncx q[0], q[1];\nh q[12];\n",
        );
        let out = lint(&v(&[
            &path,
            "--scaled",
            "--elu-ions",
            "10",
            "--head",
            "4",
            "--stream",
            "--stream-window",
            "1",
        ]))
        .unwrap();
        assert!(out.contains("clean"), "{out}");
        assert!(out.contains("across 2 ELUs stream-verified"), "{out}");
        assert!(out.contains("increments"), "{out}");
    }

    #[test]
    fn run_single_file_reports_success() {
        let path = write_temp("run1.qasm", "qreg q[6];\nh q[0];\ncx q[0], q[5];\n");
        let out = run(&v(&[&path, "--head", "3"])).unwrap();
        assert!(out.contains("success: "), "{out}");
        assert!(out.contains("execution time"), "{out}");
    }

    #[test]
    fn run_with_method_prints_the_simulator() {
        let path = write_temp(
            "run-sim.qasm",
            "qreg q[4];\nh q[0];\ncx q[0], q[3];\nmeasure q[0];\nmeasure q[3];\n",
        );
        let out = run(&v(&[&path, "--head", "4", "--method", "auto"])).unwrap();
        assert!(out.contains("simulated (stabilizer):"), "{out}");
        assert!(out.contains("2 measurements"), "{out}");
        // Without --method, no simulation line appears.
        let out = run(&v(&[&path, "--head", "4"])).unwrap();
        assert!(!out.contains("simulated ("), "{out}");
    }

    #[test]
    fn run_with_stabilizer_method_rejects_non_clifford() {
        let path = write_temp("run-t.qasm", "qreg q[2];\nh q[0];\nt q[1];\n");
        let e = run(&v(&[&path, "--method", "stabilizer", "--head", "2"])).unwrap_err();
        assert!(e.contains("non-Clifford"), "{e}");
        assert!(e.contains("index 1"), "{e}");
    }

    #[test]
    fn run_rejects_exact_router() {
        let path = write_temp("run2.qasm", "qreg q[4];\ncx q[0], q[3];\n");
        let e = run(&v(&[&path, "--router", "exact"])).unwrap_err();
        assert!(e.contains("session API"), "{e}");
    }

    #[test]
    fn run_batch_emits_one_row_per_circuit() {
        let dir = std::env::temp_dir().join("tilt-cli-batch-test");
        std::fs::create_dir_all(&dir).unwrap();
        for (name, body) in [
            ("a.qasm", "qreg q[6];\nh q[0];\ncx q[0], q[5];\n"),
            ("b.qasm", "qreg q[4];\ncx q[0], q[3];\n"),
            ("c.qasm", "qreg q[6];\ncx q[2], q[3];\n"),
        ] {
            std::fs::write(dir.join(name), body).unwrap();
        }
        // Unrelated files are ignored.
        std::fs::write(dir.join("notes.txt"), "not qasm").unwrap();
        let out = run(&v(&[dir.to_str().unwrap(), "--batch", "--head", "3"])).unwrap();
        assert!(out.contains("batch of 3 circuits"), "{out}");
        for name in ["a.qasm", "b.qasm", "c.qasm"] {
            assert!(out.contains(name), "{out}");
        }
        // Header + separator + 3 rows (+ leading banner line).
        assert_eq!(out.trim().lines().count(), 6, "{out}");
    }

    #[test]
    fn run_batch_clamps_default_head_to_narrow_batches() {
        let dir = std::env::temp_dir().join("tilt-cli-batch-narrow");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("n.qasm"), "qreg q[6];\nh q[0];\ncx q[0], q[5];\n").unwrap();
        // No --head: the default (16) must clamp to the 6-qubit batch
        // instead of failing the whole run with an invalid spec.
        let out = run(&v(&[dir.to_str().unwrap(), "--batch"])).unwrap();
        assert!(out.contains("6 ions, head 6"), "{out}");
        assert!(!out.contains("error"), "{out}");
    }

    #[test]
    fn bench_exact_router_reaches_the_exact_branch() {
        // `--router exact` must reach the exact router, not silently
        // substitute LinQ: BV-64 exceeds the exact search's ion cap,
        // so the row reports that error — LinQ would have succeeded
        // and printed swap counts mislabeled as exact results.
        let text = bench(&v(&["bv", "--head", "16", "--router", "exact"])).unwrap();
        assert!(text.contains("BV"), "{text}");
        assert!(text.contains("error"), "{text}");
        assert!(text.contains("ion cap"), "{text}");
    }

    #[test]
    fn run_batch_rejects_empty_directory() {
        let dir = std::env::temp_dir().join("tilt-cli-batch-empty");
        std::fs::create_dir_all(&dir).unwrap();
        let e = run(&v(&[dir.to_str().unwrap(), "--batch"])).unwrap_err();
        assert!(e.contains("no .qasm files"), "{e}");
    }

    #[test]
    fn serve_rejects_exact_router_and_bad_spec() {
        let e = serve(&v(&["--router", "exact"])).unwrap_err();
        assert!(e.contains("not servable"), "{e}");
        let e = serve(&v(&["--ions", "1"])).unwrap_err();
        assert!(!e.is_empty());
    }

    #[test]
    fn serve_tcp_connection_round_trips_requests() {
        use std::io::{BufRead, BufReader, Write};
        use std::sync::atomic::AtomicBool;

        static FLAG: AtomicBool = AtomicBool::new(false);
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let builder =
            serve_builder(&ServeOptions::parse(&v(&["--ions", "8", "--head", "4"])).unwrap())
                .unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            handle_connection(builder, stream, 4, ServePolicy::default(), &FLAG).unwrap()
        });

        let mut client = std::net::TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(client.try_clone().unwrap());
        // Interactive request/response: the service must answer while
        // the connection stays open and idle (flush-before-blocking),
        // not only at window boundaries or EOF.
        client
            .write_all(b"{\"id\":1,\"qasm\":\"qreg q[8];\\nh q[0];\\ncx q[0], q[7];\\n\"}\n")
            .unwrap();
        client.flush().unwrap();
        let mut first = String::new();
        reader.read_line(&mut first).unwrap();
        assert!(first.contains("\"ok\":true"), "{first}");
        assert!(first.contains("\"backend\":\"tilt\""), "{first}");
        client.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
        client.flush().unwrap();
        let mut rest = Vec::new();
        for line in reader.lines() {
            rest.push(line.unwrap());
        }
        assert_eq!(rest.len(), 1, "{rest:?}");
        assert!(rest[0].contains("\"shutdown\":true"), "{}", rest[0]);
        let summary = server.join().unwrap();
        assert_eq!(summary.stats.served, 1);
    }
}
