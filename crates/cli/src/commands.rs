//! Subcommand implementations (string in → report text out).

use crate::args::{Options, RouterChoice};
use std::fmt::Write as _;
use tilt_circuit::{qasm, Circuit};
use tilt_compiler::route::exact::optimal_route;
use tilt_compiler::schedule::schedule;
use tilt_compiler::{CompileOutput, Compiler, DeviceSpec, InitialMapping, TiltProgram};
use tilt_qccd::{compile_qccd, estimate_qccd_success, QccdParams, QccdSpec};
use tilt_report::{fmt_success, Table};
use tilt_sim::{
    estimate_ideal_success, estimate_success, execution_time_us, ExecTimeModel, GateTimeModel,
    NoiseModel,
};

/// Loads the target as a QASM file.
fn load_circuit(opts: &Options) -> Result<Circuit, String> {
    let source = std::fs::read_to_string(&opts.target)
        .map_err(|e| format!("cannot read `{}`: {e}", opts.target))?;
    qasm::parse_qasm(&source).map_err(|e| e.to_string())
}

fn device(opts: &Options, circuit: &Circuit) -> Result<DeviceSpec, String> {
    let ions = opts.ions.unwrap_or(circuit.n_qubits());
    DeviceSpec::new(ions, opts.head).map_err(|e| e.to_string())
}

/// Runs the compilation pipeline per the options (including the exact
/// router, which bypasses `Compiler`'s policy-based routing).
fn run_pipeline(opts: &Options, circuit: &Circuit) -> Result<CompileOutput, String> {
    let spec = device(opts, circuit)?;
    if opts.router == RouterChoice::Exact {
        // Exact routing: decompose → optimal route → lower swaps → schedule.
        let native = tilt_compiler::decompose::decompose(circuit);
        let initial = InitialMapping::Identity.build(&native, spec.n_ions());
        let routed = optimal_route(&native, spec, &initial, &opts.exact_config())
            .map_err(|e| e.to_string())?;
        let lowered = tilt_compiler::decompose::decompose(&routed.circuit);
        let program = schedule(&lowered, spec, opts.scheduler);
        let report = tilt_compiler::CompileReport {
            swap_count: routed.swap_count,
            opposing_swap_count: routed.opposing_swap_count,
            opposing_ratio: routed.opposing_ratio(),
            move_count: program.move_count(),
            move_distance_ions: program.move_distance_ions(),
            native_gate_count: program.gate_count(),
            native_two_qubit_count: program.two_qubit_gate_count(),
            t_decompose: std::time::Duration::ZERO,
            t_swap: std::time::Duration::ZERO,
            t_move: std::time::Duration::ZERO,
        };
        return Ok(CompileOutput {
            program,
            routed,
            report,
        });
    }
    let mut compiler = Compiler::new(spec);
    compiler
        .router(opts.router_kind())
        .scheduler(opts.scheduler);
    compiler.compile(circuit).map_err(|e| e.to_string())
}

fn describe(out: &CompileOutput, program: &TiltProgram) -> String {
    let r = &out.report;
    let mut text = String::new();
    let _ = writeln!(
        text,
        "device: {} ions, head {}",
        program.spec().n_ions(),
        program.spec().head_size()
    );
    let _ = writeln!(
        text,
        "swaps: {} (opposing {}, ratio {:.2})",
        r.swap_count, r.opposing_swap_count, r.opposing_ratio
    );
    let _ = writeln!(
        text,
        "moves: {} (distance {} ion spacings)",
        r.move_count, r.move_distance_ions
    );
    let _ = writeln!(
        text,
        "native gates: {} ({} two-qubit)",
        r.native_gate_count, r.native_two_qubit_count
    );
    text
}

fn emit_extras(opts: &Options, out: &CompileOutput) -> String {
    let mut text = String::new();
    if opts.emit_qasm {
        text.push_str("\n-- routed physical circuit (OpenQASM) --\n");
        text.push_str(&qasm::to_qasm(&out.routed.circuit));
    }
    if opts.emit_program {
        text.push_str("\n-- scheduled program --\n");
        let _ = write!(text, "{}", out.program);
    }
    text
}

/// `tilt-cli compile <file.qasm>`
pub fn compile(args: &[String]) -> Result<String, String> {
    let opts = Options::parse(args).map_err(|e| e.to_string())?;
    let circuit = load_circuit(&opts)?;
    let out = run_pipeline(&opts, &circuit)?;
    let mut text = format!("compiled `{}`: {}\n", opts.target, circuit.stats());
    text.push_str(&describe(&out, &out.program));
    text.push_str(&emit_extras(&opts, &out));
    Ok(text)
}

/// `tilt-cli simulate <file.qasm>`
pub fn simulate(args: &[String]) -> Result<String, String> {
    let opts = Options::parse(args).map_err(|e| e.to_string())?;
    let circuit = load_circuit(&opts)?;
    let out = run_pipeline(&opts, &circuit)?;
    let noise = NoiseModel::default();
    let times = GateTimeModel::default();
    let success = estimate_success(&out.program, &noise, &times);
    let ideal = estimate_ideal_success(&circuit, &noise, &times);
    let t_us = execution_time_us(&out.program, &times, &ExecTimeModel::default());

    let mut text = format!("simulated `{}`: {}\n", opts.target, circuit.stats());
    text.push_str(&describe(&out, &out.program));
    let _ = writeln!(
        text,
        "success: {} (log10 {:.2}), ideal TI {}",
        fmt_success(success.success),
        success.log10_success(),
        fmt_success(ideal.success)
    );
    let _ = writeln!(
        text,
        "heat: {:.2} quanta after {} moves",
        success.final_quanta, success.moves
    );
    let _ = writeln!(text, "execution time: {:.3} ms", t_us / 1e3);
    text.push_str(&emit_extras(&opts, &out));
    Ok(text)
}

/// `tilt-cli timeline <file.qasm>`
pub fn timeline(args: &[String]) -> Result<String, String> {
    let opts = Options::parse(args).map_err(|e| e.to_string())?;
    let circuit = load_circuit(&opts)?;
    let out = run_pipeline(&opts, &circuit)?;
    let mut text = format!("timeline of `{}`\n", opts.target);
    text.push_str(&tilt_compiler::viz::render_timeline(&out.program));
    Ok(text)
}

/// `tilt-cli scale <file.qasm>`
pub fn scale(args: &[String]) -> Result<String, String> {
    let opts = Options::parse(args).map_err(|e| e.to_string())?;
    let circuit = load_circuit(&opts)?;
    let spec = tilt_scale::ScaleSpec::new(opts.elu_ions, opts.head.min(opts.elu_ions))
        .map_err(|e| e.to_string())?;
    let program = tilt_scale::compile_scaled(&circuit, &spec).map_err(|e| e.to_string())?;
    let report =
        tilt_scale::estimate_scaled(&program, &NoiseModel::default(), &GateTimeModel::default());
    let mut text = format!(
        "modular `{}`: {} ELUs of {} ions (head {})\n",
        opts.target,
        program.elu_outputs.len(),
        spec.ions_per_elu(),
        spec.head_size()
    );
    let _ = writeln!(
        text,
        "remote gates: {} (EPR pairs), local swaps: {}, local moves: {}",
        report.remote_gates, report.total_swaps, report.total_moves
    );
    let _ = writeln!(
        text,
        "success: {} (log10 {:.2}), makespan {:.3} ms",
        fmt_success(report.success),
        report.log10_success(),
        report.exec_time_us / 1e3
    );
    Ok(text)
}

/// `tilt-cli qccd <file.qasm>`
pub fn qccd(args: &[String]) -> Result<String, String> {
    let opts = Options::parse(args).map_err(|e| e.to_string())?;
    let circuit = load_circuit(&opts)?;
    let native = tilt_compiler::decompose::decompose(&circuit);
    let spec =
        QccdSpec::for_qubits(circuit.n_qubits(), opts.ions_per_trap).map_err(|e| e.to_string())?;
    let program = compile_qccd(&native, &spec).map_err(|e| e.to_string())?;
    let report = estimate_qccd_success(
        &program,
        &NoiseModel::default(),
        &GateTimeModel::default(),
        &QccdParams::default(),
    );
    let mut text = format!(
        "QCCD `{}`: {} traps × {} capacity\n",
        opts.target,
        spec.n_traps(),
        spec.capacity()
    );
    let _ = writeln!(
        text,
        "transports: {} ({} shuttle segments), cooling rounds: {}",
        report.transports, report.shuttle_segments, report.cooling_rounds
    );
    let _ = writeln!(
        text,
        "success: {} (peak heat {:.1} quanta)",
        fmt_success(report.success),
        report.peak_quanta
    );
    Ok(text)
}

/// `tilt-cli bench <name|all>`
pub fn bench(args: &[String]) -> Result<String, String> {
    let opts = Options::parse(args).map_err(|e| e.to_string())?;
    let suite = tilt_benchmarks::paper_suite();
    let selected: Vec<_> = if opts.target == "all" {
        suite
    } else {
        let wanted = opts.target.to_uppercase();
        let matched: Vec<_> = suite.into_iter().filter(|b| b.name == wanted).collect();
        if matched.is_empty() {
            return Err(format!(
                "unknown benchmark `{}` (try adder, bv, qaoa, rcs, qft, sqrt, all)",
                opts.target
            ));
        }
        matched
    };

    let noise = NoiseModel::default();
    let times = GateTimeModel::default();
    let mut table = Table::new(["benchmark", "swaps", "moves", "success", "exec(s)"]);
    for b in &selected {
        let mut bench_opts = opts.clone();
        bench_opts.ions = Some(b.circuit.n_qubits());
        let out = run_pipeline(&bench_opts, &b.circuit)?;
        let success = estimate_success(&out.program, &noise, &times);
        let t_us = execution_time_us(&out.program, &times, &ExecTimeModel::default());
        table.row([
            b.name.to_string(),
            out.report.swap_count.to_string(),
            out.report.move_count.to_string(),
            fmt_success(success.success),
            format!("{:.3}", t_us / 1e6),
        ]);
    }
    Ok(table.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, content: &str) -> String {
        let dir = std::env::temp_dir().join("tilt-cli-cmd-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        path.to_str().unwrap().to_string()
    }

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn compile_reports_swaps_for_long_gate() {
        let path = write_temp("long.qasm", "qreg q[8];\ncx q[0], q[7];\n");
        let out = compile(&v(&[&path, "--head", "4"])).unwrap();
        assert!(out.contains("swaps: "));
        assert!(!out.contains("swaps: 0"));
    }

    #[test]
    fn compile_emit_qasm_includes_swap_gates() {
        let path = write_temp("emit.qasm", "qreg q[8];\ncx q[0], q[7];\n");
        let out = compile(&v(&[&path, "--head", "4", "--emit-qasm"])).unwrap();
        assert!(out.contains("swap q["));
    }

    #[test]
    fn simulate_prints_probability() {
        let path = write_temp("sim.qasm", "qreg q[4];\nh q[0];\ncx q[0], q[3];\n");
        let out = simulate(&v(&[&path, "--head", "4"])).unwrap();
        assert!(out.contains("success: 0."), "{out}");
    }

    #[test]
    fn missing_file_is_reported() {
        let e = compile(&v(&["/nonexistent/x.qasm"])).unwrap_err();
        assert!(e.contains("cannot read"));
    }

    #[test]
    fn bad_qasm_is_reported() {
        let path = write_temp("bad.qasm", "qreg q[2];\nwat q[0];\n");
        let e = compile(&v(&[&path])).unwrap_err();
        assert!(e.contains("wat"));
    }

    #[test]
    fn bench_all_lists_six_rows() {
        let out = bench(&v(&["all", "--head", "32"])).unwrap();
        // Header + separator + 6 rows.
        assert_eq!(out.trim().lines().count(), 8, "{out}");
    }

    #[test]
    fn timeline_draws_head_bars() {
        let path = write_temp("tl.qasm", "qreg q[8];\ncx q[0], q[1];\ncx q[6], q[7];\n");
        let out = timeline(&v(&[&path, "--head", "4"])).unwrap();
        assert!(out.contains("####"), "{out}");
        assert!(out.contains("pos"), "{out}");
    }

    #[test]
    fn scale_reports_epr_pairs() {
        let path = write_temp("sc.qasm", "qreg q[16];\ncx q[7], q[8];\ncx q[0], q[1];\n");
        let out = scale(&v(&[&path, "--elu-ions", "10", "--head", "4"])).unwrap();
        assert!(out.contains("remote gates: 1"), "{out}");
        assert!(out.contains("2 ELUs"), "{out}");
    }

    #[test]
    fn exact_router_on_small_file() {
        let path = write_temp("exact.qasm", "qreg q[6];\ncx q[0], q[5];\n");
        let out = compile(&v(&[&path, "--head", "3", "--router", "exact"])).unwrap();
        assert!(out.contains("swaps: 2"), "{out}");
    }
}
