//! Hand-rolled option parsing (no external dependencies).

use std::error::Error;
use std::fmt;
use tilt_compiler::route::{ExactConfig, LinqConfig};
use tilt_compiler::{RouterKind, SchedulerKind};
use tilt_engine::SimMethod;

/// Which router the user asked for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouterChoice {
    /// The paper's Algorithm 1.
    Linq,
    /// The Qiskit-StochasticSwap-style baseline.
    Stochastic,
    /// Exact minimal-swap search (small instances only).
    Exact,
}

/// Parsed command-line options shared by all subcommands.
#[derive(Clone, Debug, PartialEq)]
pub struct Options {
    /// First positional argument (file path or benchmark name).
    pub target: String,
    /// Tape length override (`--ions`).
    pub ions: Option<usize>,
    /// Head size (`--head`), default 16.
    pub head: usize,
    /// Router selection (`--router`).
    pub router: RouterChoice,
    /// Swap-span cap (`--max-swap-len`).
    pub max_swap_len: Option<usize>,
    /// Eq. 1 decay (`--alpha`).
    pub alpha: f64,
    /// Scheduler (`--scheduler`).
    pub scheduler: SchedulerKind,
    /// QCCD trap size (`--ions-per-trap`), default 17.
    pub ions_per_trap: usize,
    /// Ions per ELU for the `scale` command (`--elu-ions`), default 18.
    pub elu_ions: usize,
    /// Logical-circuit simulation method (`--method auto|statevec|
    /// stabilizer`); `None` = no simulation.
    pub method: Option<SimMethod>,
    /// Emit machine-readable JSON instead of human text (`--json`,
    /// `lint` command only).
    pub json: bool,
    /// Print the scheduled op stream (`--emit-program`).
    pub emit_program: bool,
    /// Print the routed circuit as QASM (`--emit-qasm`).
    pub emit_qasm: bool,
    /// Treat the target as a directory of QASM files and run them as
    /// one batch (`--batch`, `run` command only).
    pub batch: bool,
    /// Stream the QASM file through the bounded-memory windowed
    /// pipeline instead of materializing the circuit (`--stream`,
    /// `run` and `lint` commands).
    pub stream: bool,
    /// Lint against the modular ELU-array backend instead of a single
    /// TILT tape (`--scaled`, `lint` command only; the ELU geometry
    /// comes from `--elu-ions`/`--head` as for `scale`).
    pub scaled: bool,
    /// Input gates per streaming window (`--stream-window`); `None` =
    /// the engine default.
    pub stream_window: Option<usize>,
}

/// Why argument parsing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseArgsError(pub String);

impl fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl Error for ParseArgsError {}

impl Options {
    /// Parses a subcommand's arguments: one positional target plus flags.
    ///
    /// # Errors
    ///
    /// Returns [`ParseArgsError`] on missing targets, unknown flags, or
    /// unparseable values.
    pub fn parse(args: &[String]) -> Result<Options, ParseArgsError> {
        let mut opts = Options {
            target: String::new(),
            ions: None,
            head: 16,
            router: RouterChoice::Linq,
            max_swap_len: None,
            alpha: 0.9,
            scheduler: SchedulerKind::GreedyMaxExecutable,
            ions_per_trap: 17,
            elu_ions: 18,
            method: None,
            json: false,
            emit_program: false,
            emit_qasm: false,
            batch: false,
            stream: false,
            scaled: false,
            stream_window: None,
        };
        let mut positional: Vec<&String> = Vec::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value_for = |flag: &str| -> Result<&String, ParseArgsError> {
                it.next()
                    .ok_or_else(|| ParseArgsError(format!("{flag} needs a value")))
            };
            match arg.as_str() {
                "--ions" => opts.ions = Some(parse_num(value_for("--ions")?, "--ions")?),
                "--head" => opts.head = parse_num(value_for("--head")?, "--head")?,
                "--max-swap-len" => {
                    opts.max_swap_len =
                        Some(parse_num(value_for("--max-swap-len")?, "--max-swap-len")?);
                }
                "--alpha" => {
                    let v = value_for("--alpha")?;
                    opts.alpha = v
                        .parse()
                        .map_err(|_| ParseArgsError(format!("invalid --alpha `{v}`")))?;
                }
                "--router" => {
                    opts.router = match value_for("--router")?.as_str() {
                        "linq" => RouterChoice::Linq,
                        "stochastic" | "baseline" => RouterChoice::Stochastic,
                        "exact" => RouterChoice::Exact,
                        other => return Err(ParseArgsError(format!("unknown router `{other}`"))),
                    }
                }
                "--scheduler" => {
                    opts.scheduler = match value_for("--scheduler")?.as_str() {
                        "greedy" => SchedulerKind::GreedyMaxExecutable,
                        "naive" => SchedulerKind::NaiveNextGate,
                        other => {
                            return Err(ParseArgsError(format!("unknown scheduler `{other}`")))
                        }
                    }
                }
                "--ions-per-trap" => {
                    opts.ions_per_trap =
                        parse_num(value_for("--ions-per-trap")?, "--ions-per-trap")?;
                }
                "--elu-ions" => opts.elu_ions = parse_num(value_for("--elu-ions")?, "--elu-ions")?,
                "--method" => {
                    let v = value_for("--method")?;
                    opts.method = Some(SimMethod::parse(v).ok_or_else(|| {
                        ParseArgsError(format!(
                            "unknown method `{v}` (expected auto, statevec, or stabilizer)"
                        ))
                    })?);
                }
                "--json" => opts.json = true,
                "--emit-program" => opts.emit_program = true,
                "--emit-qasm" => opts.emit_qasm = true,
                "--batch" => opts.batch = true,
                "--stream" => opts.stream = true,
                "--scaled" => opts.scaled = true,
                "--stream-window" => {
                    let w = parse_num(value_for("--stream-window")?, "--stream-window")?;
                    if w == 0 {
                        return Err(ParseArgsError(
                            "--stream-window must be a positive gate count".into(),
                        ));
                    }
                    opts.stream_window = Some(w);
                }
                flag if flag.starts_with("--") => {
                    return Err(ParseArgsError(format!("unknown option `{flag}`")))
                }
                _ => positional.push(arg),
            }
        }
        match positional.as_slice() {
            [target] => {
                opts.target = (*target).clone();
                Ok(opts)
            }
            [] => Err(ParseArgsError("missing target argument".into())),
            more => Err(ParseArgsError(format!(
                "expected one target, got {}",
                more.len()
            ))),
        }
    }

    /// The router kind this selection corresponds to (exact is handled
    /// separately by the commands since it is not a [`RouterKind`]).
    pub fn router_kind(&self) -> RouterKind {
        router_kind_from(self.router, self.max_swap_len, self.alpha)
    }

    /// Exact-router configuration derived from the flags.
    pub fn exact_config(&self) -> ExactConfig {
        ExactConfig {
            max_swap_len: self.max_swap_len,
            ..ExactConfig::default()
        }
    }
}

fn parse_num(text: &str, flag: &str) -> Result<usize, ParseArgsError> {
    text.parse()
        .map_err(|_| ParseArgsError(format!("invalid {flag} value `{text}`")))
}

/// The policy-based [`RouterKind`] a router choice plus the LinQ flags
/// select — shared by [`Options`] and [`ServeOptions`]. `Exact` maps to
/// LinQ here; callers that support the exact search branch on the
/// choice before reaching this.
fn router_kind_from(router: RouterChoice, max_swap_len: Option<usize>, alpha: f64) -> RouterKind {
    match router {
        RouterChoice::Linq | RouterChoice::Exact => RouterKind::Linq(LinqConfig {
            max_swap_len,
            alpha,
            ..LinqConfig::default()
        }),
        RouterChoice::Stochastic => RouterKind::Stochastic(Default::default()),
    }
}

/// Parsed options for the `serve` subcommand (which, unlike the other
/// commands, takes no positional target — requests arrive on the wire).
#[derive(Clone, Debug, PartialEq)]
pub struct ServeOptions {
    /// Tape length of the shared session device (`--ions`), default 64.
    pub ions: usize,
    /// Head size (`--head`), default 16 (clamped to the tape).
    pub head: usize,
    /// Router selection (`--router`; `exact` is rejected — the service
    /// drives the session API).
    pub router: RouterChoice,
    /// Swap-span cap (`--max-swap-len`).
    pub max_swap_len: Option<usize>,
    /// Eq. 1 decay (`--alpha`).
    pub alpha: f64,
    /// Scheduler (`--scheduler`).
    pub scheduler: SchedulerKind,
    /// In-flight request window (`--window`), 0 = auto (4 × pool
    /// threads, floor 8).
    pub window: usize,
    /// TCP listen address (`--listen host:port`); stdin/stdout when
    /// absent.
    pub listen: Option<String>,
    /// Compile-cache persistence directory (`--cache-dir`): snapshot
    /// entries are reloaded at startup (with digest verification) and
    /// written back at drain. The in-memory cache runs regardless.
    pub cache_dir: Option<String>,
    /// Admission budget: aggregate in-flight run requests across every
    /// connection (`--max-in-flight`), 0 = unlimited. Default 1024.
    pub max_in_flight: usize,
    /// Admission budget: aggregate in-flight request bytes
    /// (`--max-in-flight-bytes`), 0 = unlimited. Default 64 MiB.
    pub max_in_flight_bytes: usize,
    /// Deadline applied to requests that name no `deadline_ms`
    /// (`--default-deadline-ms`), 0 = none.
    pub default_deadline_ms: u64,
}

impl ServeOptions {
    /// Parses `serve` arguments (flags only, no positional target).
    ///
    /// Delegates the shared flag grammar to [`Options::parse`] (with a
    /// synthetic target, since `serve` has none) after extracting the
    /// two serve-only flags — one grammar, one place to extend it.
    ///
    /// # Errors
    ///
    /// Returns [`ParseArgsError`] on unknown flags, missing values,
    /// unparseable numbers, stray positionals, or `--router exact`.
    pub fn parse(args: &[String]) -> Result<ServeOptions, ParseArgsError> {
        // Pull out the serve-only flags, hand the rest to the common
        // parser with a synthetic positional target.
        const SYNTHETIC_TARGET: &str = "\u{0}serve";
        let mut window = 0usize;
        let mut listen: Option<String> = None;
        let mut cache_dir: Option<String> = None;
        let mut max_in_flight = 1024usize;
        let mut max_in_flight_bytes = 64usize << 20;
        let mut default_deadline_ms = 0u64;
        let mut rest: Vec<String> = vec![SYNTHETIC_TARGET.to_string()];
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value_for = |flag: &str| -> Result<&String, ParseArgsError> {
                it.next()
                    .ok_or_else(|| ParseArgsError(format!("{flag} needs a value")))
            };
            match arg.as_str() {
                "--window" => window = parse_num(value_for("--window")?, "--window")?,
                "--listen" => listen = Some(value_for("--listen")?.clone()),
                "--cache-dir" => cache_dir = Some(value_for("--cache-dir")?.clone()),
                "--max-in-flight" => {
                    max_in_flight = parse_num(value_for("--max-in-flight")?, "--max-in-flight")?;
                }
                "--max-in-flight-bytes" => {
                    max_in_flight_bytes =
                        parse_num(value_for("--max-in-flight-bytes")?, "--max-in-flight-bytes")?;
                }
                "--default-deadline-ms" => {
                    default_deadline_ms =
                        parse_num(value_for("--default-deadline-ms")?, "--default-deadline-ms")?
                            as u64;
                }
                _ => rest.push(arg.clone()),
            }
        }
        let common = Options::parse(&rest).map_err(|e| {
            // The synthetic target makes any real positional a
            // "two targets" error; report it in serve's terms.
            if e.0.starts_with("expected one target") {
                ParseArgsError("`serve` takes no positional argument".into())
            } else {
                e
            }
        })?;
        if common.router == RouterChoice::Exact {
            return Err(ParseArgsError(
                "`serve` drives the session API; --router exact is not servable".into(),
            ));
        }
        Ok(ServeOptions {
            ions: common.ions.unwrap_or(64),
            head: common.head,
            router: common.router,
            max_swap_len: common.max_swap_len,
            alpha: common.alpha,
            scheduler: common.scheduler,
            window,
            listen,
            cache_dir,
            max_in_flight,
            max_in_flight_bytes,
            default_deadline_ms,
        })
    }

    /// The router kind this selection corresponds to.
    pub fn router_kind(&self) -> RouterKind {
        router_kind_from(self.router, self.max_swap_len, self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(std::string::ToString::to_string).collect()
    }

    #[test]
    fn defaults() {
        let o = Options::parse(&v(&["file.qasm"])).unwrap();
        assert_eq!(o.target, "file.qasm");
        assert_eq!(o.head, 16);
        assert_eq!(o.router, RouterChoice::Linq);
        assert!(!o.emit_program);
    }

    #[test]
    fn full_flag_set() {
        let o = Options::parse(&v(&[
            "x.qasm",
            "--ions",
            "64",
            "--head",
            "32",
            "--router",
            "stochastic",
            "--max-swap-len",
            "9",
            "--alpha",
            "0.7",
            "--scheduler",
            "naive",
            "--emit-program",
            "--emit-qasm",
        ]))
        .unwrap();
        assert_eq!(o.ions, Some(64));
        assert_eq!(o.head, 32);
        assert_eq!(o.router, RouterChoice::Stochastic);
        assert_eq!(o.max_swap_len, Some(9));
        assert_eq!(o.alpha, 0.7);
        assert_eq!(o.scheduler, SchedulerKind::NaiveNextGate);
        assert!(o.emit_program && o.emit_qasm);
    }

    #[test]
    fn json_flag_parses() {
        let o = Options::parse(&v(&["x", "--json"])).unwrap();
        assert!(o.json);
        assert!(!Options::parse(&v(&["x"])).unwrap().json);
    }

    #[test]
    fn stream_flags_parse_and_reject_zero_window() {
        let o = Options::parse(&v(&["x", "--stream", "--stream-window", "4096"])).unwrap();
        assert!(o.stream);
        assert_eq!(o.stream_window, Some(4096));
        let o = Options::parse(&v(&["x", "--scaled", "--elu-ions", "10"])).unwrap();
        assert!(o.scaled);
        assert_eq!(o.elu_ions, 10);
        let o = Options::parse(&v(&["x"])).unwrap();
        assert!(!o.stream);
        assert!(!o.scaled);
        assert_eq!(o.stream_window, None);
        let e = Options::parse(&v(&["x", "--stream-window", "0"])).unwrap_err();
        assert!(e.0.contains("positive"));
    }

    #[test]
    fn rejects_unknown_flag() {
        assert!(Options::parse(&v(&["x", "--bogus"])).is_err());
    }

    #[test]
    fn method_flag_parses_and_rejects_unknowns() {
        let o = Options::parse(&v(&["x", "--method", "stabilizer"])).unwrap();
        assert_eq!(o.method, Some(SimMethod::Stabilizer));
        let o = Options::parse(&v(&["x"])).unwrap();
        assert_eq!(o.method, None, "simulation is off by default");
        let e = Options::parse(&v(&["x", "--method", "magic"])).unwrap_err();
        assert!(e.0.contains("unknown method `magic`"));
    }

    #[test]
    fn rejects_missing_value() {
        assert!(Options::parse(&v(&["x", "--head"])).is_err());
    }

    #[test]
    fn rejects_bad_number() {
        assert!(Options::parse(&v(&["x", "--head", "lots"])).is_err());
    }

    #[test]
    fn rejects_extra_positionals() {
        assert!(Options::parse(&v(&["a", "b"])).is_err());
    }

    #[test]
    fn serve_options_defaults_and_flags() {
        let o = ServeOptions::parse(&v(&[])).unwrap();
        assert_eq!((o.ions, o.head, o.window), (64, 16, 0));
        assert_eq!(o.listen, None);
        assert_eq!(o.cache_dir, None);
        assert_eq!(o.max_in_flight, 1024);
        assert_eq!(o.max_in_flight_bytes, 64 << 20);
        assert_eq!(o.default_deadline_ms, 0);
        let o = ServeOptions::parse(&v(&[
            "--ions",
            "32",
            "--head",
            "8",
            "--window",
            "16",
            "--listen",
            "127.0.0.1:0",
            "--router",
            "stochastic",
            "--scheduler",
            "naive",
            "--cache-dir",
            "/tmp/tilt-cache",
            "--max-in-flight",
            "4",
            "--max-in-flight-bytes",
            "65536",
            "--default-deadline-ms",
            "250",
        ]))
        .unwrap();
        assert_eq!((o.ions, o.head, o.window), (32, 8, 16));
        assert_eq!(o.listen.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(o.router, RouterChoice::Stochastic);
        assert_eq!(o.scheduler, SchedulerKind::NaiveNextGate);
        assert_eq!(o.cache_dir.as_deref(), Some("/tmp/tilt-cache"));
        assert_eq!(o.max_in_flight, 4);
        assert_eq!(o.max_in_flight_bytes, 65536);
        assert_eq!(o.default_deadline_ms, 250);
        assert!(ServeOptions::parse(&v(&["--cache-dir"])).is_err());
        assert!(ServeOptions::parse(&v(&["--max-in-flight", "many"])).is_err());
    }

    #[test]
    fn serve_options_reject_exact_and_positionals() {
        assert!(ServeOptions::parse(&v(&["--router", "exact"])).is_err());
        assert!(ServeOptions::parse(&v(&["file.qasm"])).is_err());
        assert!(ServeOptions::parse(&v(&["--bogus"])).is_err());
    }

    #[test]
    fn router_kind_carries_flags() {
        let o = Options::parse(&v(&["x", "--max-swap-len", "7", "--alpha", "0.5"])).unwrap();
        match o.router_kind() {
            RouterKind::Linq(cfg) => {
                assert_eq!(cfg.max_swap_len, Some(7));
                assert_eq!(cfg.alpha, 0.5);
            }
            other => panic!("unexpected router {other:?}"),
        }
    }
}
