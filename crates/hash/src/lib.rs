//! Content-addressing primitives for the compile cache.
//!
//! The compile pipeline (decompose → map/route → tape-schedule) is fully
//! deterministic: the same circuit under the same configuration always
//! produces the same program, success estimate, and execution time. That
//! makes compilation *content-addressable* — the pair
//! `(circuit digest, config fingerprint)` identifies a compile result
//! completely. This crate provides the two halves of that key:
//!
//! * [`Hasher`] — a streaming 128-bit FNV-1a-style hasher processed one
//!   64-bit word at a time. Not cryptographic; chosen for zero
//!   dependencies, platform-independent output, and enough state that
//!   accidental collisions across cache keys are vanishingly unlikely.
//! * [`Fingerprint`] — the trait every hashable configuration type
//!   implements. Implementations feed their *semantic content* (not
//!   their memory representation) into the hasher, so a fingerprint is
//!   invariant to allocation history, buffer reuse, and padding.
//! * [`Digest`] — the resulting 128-bit value, with a fixed 32-hex-char
//!   rendering for persistence keys.
//!
//! # Stability
//!
//! Digests are stable across runs and platforms (all writes reduce to
//! little-endian-independent `u64` words), but **not** across versions
//! of this workspace: adding a gate variant or a config knob legitimately
//! changes the hash stream. Persistent caches therefore verify a payload
//! digest on load and silently discard entries that no longer match.
//!
//! # Example
//!
//! ```
//! use tilt_hash::{Fingerprint, Hasher};
//!
//! struct Knobs { alpha: f64, window: usize }
//! impl Fingerprint for Knobs {
//!     fn fingerprint_into(&self, h: &mut Hasher) {
//!         h.write_f64(self.alpha);
//!         h.write_usize(self.window);
//!     }
//! }
//!
//! let a = Knobs { alpha: 0.9, window: 8 }.fingerprint();
//! let b = Knobs { alpha: 0.9, window: 8 }.fingerprint();
//! let c = Knobs { alpha: 0.5, window: 8 }.fingerprint();
//! assert_eq!(a, b);
//! assert_ne!(a, c);
//! assert_eq!(a, tilt_hash::Digest::from_hex(&a.to_hex()).unwrap());
//! ```

/// 128-bit FNV offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// 128-bit FNV prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// A 128-bit content digest.
///
/// Renders as exactly 32 lowercase hex characters via [`Digest::to_hex`];
/// [`Digest::from_hex`] accepts only that form, so persisted keys
/// round-trip unambiguously.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub u128);

impl Digest {
    /// The fixed-width hex rendering used as a persistence key.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the [`Digest::to_hex`] form; `None` for anything else
    /// (wrong length, uppercase, stray characters).
    pub fn from_hex(text: &str) -> Option<Digest> {
        if text.len() != 32 || !text.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f')) {
            return None;
        }
        u128::from_str_radix(text, 16).ok().map(Digest)
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Streaming 128-bit structural hasher.
///
/// All write methods reduce to whole `u64` words (strings are
/// length-prefixed and zero-padded to word boundaries), so the digest
/// depends only on the *sequence of values written*, never on how the
/// caller chunked them in memory.
#[derive(Clone, Debug)]
pub struct Hasher {
    state: u128,
}

impl Default for Hasher {
    fn default() -> Self {
        Hasher::new()
    }
}

impl Hasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Hasher { state: FNV_OFFSET }
    }

    /// A hasher whose initial state is perturbed by `key`.
    ///
    /// FNV-1a is not collision-resistant against an adversary — its
    /// state update is invertible, so colliding inputs for the *known*
    /// initial state are constructible offline. Folding a secret key
    /// into the starting state removes that offline capability: inputs
    /// colliding under one key do not collide under another. Used by
    /// the compile cache, which salts circuit keys with a per-cache
    /// random value so hostile wire payloads cannot engineer
    /// cross-request key collisions.
    pub fn keyed(key: u128) -> Self {
        Hasher {
            state: FNV_OFFSET ^ key,
        }
    }

    /// Folds one 64-bit word into the state (FNV-1a step).
    #[inline]
    pub fn write_u64(&mut self, word: u64) -> &mut Self {
        self.state = (self.state ^ word as u128).wrapping_mul(FNV_PRIME);
        self
    }

    /// Writes a small discriminant (enum variant tags).
    #[inline]
    pub fn write_tag(&mut self, tag: u8) -> &mut Self {
        self.write_u64(tag as u64)
    }

    /// Writes a `usize` (as `u64`; the workspace never hashes values
    /// beyond 2^64 on any supported platform).
    #[inline]
    pub fn write_usize(&mut self, value: usize) -> &mut Self {
        self.write_u64(value as u64)
    }

    /// Writes an `f64` by bit pattern — `-0.0` and `0.0` hash
    /// differently, NaNs hash by payload. Configuration knobs are
    /// ordinary finite numbers, where bit equality is value equality.
    #[inline]
    pub fn write_f64(&mut self, value: f64) -> &mut Self {
        self.write_u64(value.to_bits())
    }

    /// Writes a boolean as a full word.
    #[inline]
    pub fn write_bool(&mut self, value: bool) -> &mut Self {
        self.write_u64(value as u64)
    }

    /// Writes an optional `usize` unambiguously (tag then value).
    #[inline]
    pub fn write_opt_usize(&mut self, value: Option<usize>) -> &mut Self {
        match value {
            None => self.write_tag(0),
            Some(v) => self.write_tag(1).write_usize(v),
        }
    }

    /// Writes a byte string: length prefix, then the bytes packed into
    /// little-endian words with zero padding. The length prefix keeps
    /// `"ab", "c"` distinct from `"a", "bc"` across consecutive writes.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        self.write_u64(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(word));
        }
        self
    }

    /// Writes a UTF-8 string (same encoding as [`Hasher::write_bytes`]).
    pub fn write_str(&mut self, text: &str) -> &mut Self {
        self.write_bytes(text.as_bytes())
    }

    /// Finishes the stream.
    pub fn digest(&self) -> Digest {
        Digest(self.state)
    }
}

/// Stable structural hashing for configuration and circuit types.
///
/// Implementations must write every field that can influence a compile
/// result (conservatively: every semantic field), using unambiguous
/// encodings — tag enum variants, length-prefix variable-size data.
/// Hashing *more* than strictly necessary costs only spurious cache
/// misses; hashing less returns wrong cached results, so when in doubt,
/// write it.
pub trait Fingerprint {
    /// Feeds this value's semantic content into `h`.
    fn fingerprint_into(&self, h: &mut Hasher);

    /// The standalone digest of this value.
    fn fingerprint(&self) -> Digest {
        let mut h = Hasher::new();
        self.fingerprint_into(&mut h);
        h.digest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_hex_round_trips() {
        let d = Digest(0x0123_4567_89ab_cdef_0011_2233_4455_6677);
        assert_eq!(d.to_hex().len(), 32);
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        // Leading zeros preserved.
        let small = Digest(7);
        assert_eq!(small.to_hex(), format!("{:032x}", 7));
        assert_eq!(Digest::from_hex(&small.to_hex()), Some(small));
    }

    #[test]
    fn from_hex_rejects_malformed_keys() {
        assert_eq!(Digest::from_hex(""), None);
        assert_eq!(Digest::from_hex("abc"), None);
        assert_eq!(Digest::from_hex(&"f".repeat(33)), None);
        assert_eq!(Digest::from_hex(&"G".repeat(32)), None);
        assert_eq!(
            Digest::from_hex(&"F".repeat(32)),
            None,
            "uppercase rejected"
        );
    }

    #[test]
    fn word_stream_determines_digest() {
        let mut a = Hasher::new();
        a.write_u64(1).write_u64(2);
        let mut b = Hasher::new();
        b.write_u64(1).write_u64(2);
        assert_eq!(a.digest(), b.digest());
        let mut c = Hasher::new();
        c.write_u64(2).write_u64(1);
        assert_ne!(a.digest(), c.digest(), "order matters");
    }

    #[test]
    fn string_chunking_is_unambiguous() {
        let mut a = Hasher::new();
        a.write_str("ab").write_str("c");
        let mut b = Hasher::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.digest(), b.digest());
        // Zero padding does not collide with literal zero bytes.
        let mut c = Hasher::new();
        c.write_bytes(b"a");
        let mut d = Hasher::new();
        d.write_bytes(b"a\0");
        assert_ne!(c.digest(), d.digest());
    }

    #[test]
    fn f64_hashes_by_bits() {
        let mut a = Hasher::new();
        a.write_f64(0.1);
        let mut b = Hasher::new();
        b.write_f64(0.1 + f64::EPSILON);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn option_encoding_is_unambiguous() {
        let mut none_then_one = Hasher::new();
        none_then_one.write_opt_usize(None).write_usize(1);
        let mut some_one = Hasher::new();
        some_one.write_opt_usize(Some(1));
        assert_ne!(none_then_one.digest(), some_one.digest());
    }

    #[test]
    fn empty_hasher_is_the_offset_basis() {
        assert_eq!(Hasher::new().digest(), Digest(FNV_OFFSET));
    }

    #[test]
    fn keyed_hashers_disagree_across_keys_and_agree_within_one() {
        let digest_under = |key: u128| {
            let mut h = Hasher::keyed(key);
            h.write_str("payload");
            h.digest()
        };
        assert_eq!(digest_under(7), digest_under(7));
        assert_ne!(digest_under(7), digest_under(8));
        assert_ne!(digest_under(7), {
            let mut h = Hasher::new();
            h.write_str("payload");
            h.digest()
        });
        assert_eq!(Hasher::keyed(0).digest(), Hasher::new().digest());
    }
}
