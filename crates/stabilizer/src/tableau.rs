//! The bit-packed Aaronson–Gottesman tableau.
//!
//! State of an `n`-qubit stabilizer circuit as `2n` Pauli rows —
//! destabilizers `0..n`, stabilizers `n..2n` — plus one scratch row for
//! deterministic measurement. Row `i` is the Pauli string
//! `(-1)^{r_i} · ∏_q X_q^{x_iq} Z_q^{z_iq}`; the X and Z bit-planes are
//! packed 64 qubits per `u64` word and the sign bits into their own
//! bitset, so conjugating by a Clifford gate is a handful of masked
//! word operations per row and multiplying two rows (the measurement
//! `rowsum`) is word-parallel over qubits with popcount phase tracking.

use tilt_circuit::clifford::{half_pi_steps, pi_steps};
use tilt_circuit::Gate;

/// Marker error: the gate handed to [`Tableau::apply`] is not Clifford.
///
/// Carries no payload — the caller holds the gate (and its program
/// index) and renders the structured error; see
/// [`NonCliffordGate`](crate::NonCliffordGate).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NotClifford;

/// One measurement's outcome and whether the state fixed it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Measurement {
    /// The measured bit.
    pub outcome: bool,
    /// `true` when the outcome was determined by the stabilizer group
    /// (no `Z_q`-anticommuting stabilizer existed); `false` when it was
    /// a fresh coin flip.
    pub deterministic: bool,
}

/// A stabilizer tableau over `n` qubits.
///
/// # Example
///
/// ```
/// use tilt_circuit::{Gate, Qubit};
/// use tilt_stabilizer::Tableau;
///
/// let mut t = Tableau::new(2);
/// t.apply(&Gate::H(Qubit(0))).unwrap();
/// t.apply(&Gate::Cnot(Qubit(0), Qubit(1))).unwrap();
/// let first = t.measure(0, || true);
/// let second = t.measure(1, || unreachable!("correlated bit is fixed"));
/// assert!(!first.deterministic);
/// assert!(second.deterministic);
/// assert_eq!(first.outcome, second.outcome);
/// ```
#[derive(Clone, Debug)]
pub struct Tableau {
    n: usize,
    /// Words per row: `ceil(n / 64)`.
    words: usize,
    /// X bit-plane, `(2n + 1) * words` words (scratch row last).
    x: Vec<u64>,
    /// Z bit-plane, same shape.
    z: Vec<u64>,
    /// Sign bits, one per row, packed.
    r: Vec<u64>,
}

impl Tableau {
    /// The identity tableau: destabilizer `i` is `X_i`, stabilizer `i`
    /// is `Z_i` — i.e. the state `|0…0⟩`.
    pub fn new(n: usize) -> Tableau {
        let words = n.div_ceil(64);
        let rows = 2 * n + 1;
        let mut t = Tableau {
            n,
            words,
            x: vec![0; rows * words],
            z: vec![0; rows * words],
            r: vec![0; rows.div_ceil(64)],
        };
        for i in 0..n {
            t.x[i * words + i / 64] |= 1u64 << (i % 64);
            t.z[(n + i) * words + i / 64] |= 1u64 << (i % 64);
        }
        t
    }

    /// Register width.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    #[inline]
    fn r_bit(&self, row: usize) -> bool {
        self.r[row / 64] & (1u64 << (row % 64)) != 0
    }

    #[inline]
    fn r_flip(&mut self, row: usize) {
        self.r[row / 64] ^= 1u64 << (row % 64);
    }

    #[inline]
    fn r_set(&mut self, row: usize, v: bool) {
        let m = 1u64 << (row % 64);
        if v {
            self.r[row / 64] |= m;
        } else {
            self.r[row / 64] &= !m;
        }
    }

    #[inline]
    fn check(&self, q: usize) {
        assert!(q < self.n, "qubit {q} outside the {}-qubit tableau", self.n);
    }

    // --- primitive Clifford conjugations --------------------------------
    //
    // Each rule is the image of the Pauli basis under U·P·U†, applied to
    // every non-scratch row's bit at column q. `x`/`z`/`r` below denote
    // that row's X bit, Z bit, and sign.

    /// Hadamard: X↔Z, Y→−Y. `r ^= x&z; swap(x, z)`.
    pub fn h(&mut self, q: usize) {
        self.check(q);
        let (w, m) = (q / 64, 1u64 << (q % 64));
        for i in 0..2 * self.n {
            let o = i * self.words + w;
            let xb = self.x[o] & m != 0;
            let zb = self.z[o] & m != 0;
            if xb && zb {
                self.r_flip(i);
            }
            if xb != zb {
                self.x[o] ^= m;
                self.z[o] ^= m;
            }
        }
    }

    /// Phase gate: X→Y, Y→−X, Z→Z. `r ^= x&z; z ^= x`.
    pub fn s(&mut self, q: usize) {
        self.check(q);
        let (w, m) = (q / 64, 1u64 << (q % 64));
        for i in 0..2 * self.n {
            let o = i * self.words + w;
            let xb = self.x[o] & m != 0;
            if xb {
                if self.z[o] & m != 0 {
                    self.r_flip(i);
                }
                self.z[o] ^= m;
            }
        }
    }

    /// Inverse phase gate: X→−Y, Y→X. `r ^= x&!z; z ^= x`.
    pub fn sdg(&mut self, q: usize) {
        self.check(q);
        let (w, m) = (q / 64, 1u64 << (q % 64));
        for i in 0..2 * self.n {
            let o = i * self.words + w;
            let xb = self.x[o] & m != 0;
            if xb {
                if self.z[o] & m == 0 {
                    self.r_flip(i);
                }
                self.z[o] ^= m;
            }
        }
    }

    /// Pauli-X: Z→−Z, Y→−Y. `r ^= z`.
    pub fn x_gate(&mut self, q: usize) {
        self.check(q);
        let (w, m) = (q / 64, 1u64 << (q % 64));
        for i in 0..2 * self.n {
            if self.z[i * self.words + w] & m != 0 {
                self.r_flip(i);
            }
        }
    }

    /// Pauli-Y: X→−X, Z→−Z. `r ^= x^z`.
    pub fn y_gate(&mut self, q: usize) {
        self.check(q);
        let (w, m) = (q / 64, 1u64 << (q % 64));
        for i in 0..2 * self.n {
            let o = i * self.words + w;
            if (self.x[o] & m != 0) != (self.z[o] & m != 0) {
                self.r_flip(i);
            }
        }
    }

    /// Pauli-Z: X→−X, Y→−Y. `r ^= x`.
    pub fn z_gate(&mut self, q: usize) {
        self.check(q);
        let (w, m) = (q / 64, 1u64 << (q % 64));
        for i in 0..2 * self.n {
            if self.x[i * self.words + w] & m != 0 {
                self.r_flip(i);
            }
        }
    }

    /// √X (the repo's `SqrtX` up to global phase): X→X, Y→Z, Z→−Y.
    /// `r ^= !x & z; x ^= z`.
    pub fn sqrt_x(&mut self, q: usize) {
        self.check(q);
        let (w, m) = (q / 64, 1u64 << (q % 64));
        for i in 0..2 * self.n {
            let o = i * self.words + w;
            if self.z[o] & m != 0 {
                if self.x[o] & m == 0 {
                    self.r_flip(i);
                }
                self.x[o] ^= m;
            }
        }
    }

    /// √X†: X→X, Z→Y, Y→−Z. `r ^= x & z; x ^= z`.
    pub fn sqrt_x_dg(&mut self, q: usize) {
        self.check(q);
        let (w, m) = (q / 64, 1u64 << (q % 64));
        for i in 0..2 * self.n {
            let o = i * self.words + w;
            if self.z[o] & m != 0 {
                if self.x[o] & m != 0 {
                    self.r_flip(i);
                }
                self.x[o] ^= m;
            }
        }
    }

    /// √Y (the repo's `SqrtY` up to global phase): X→−Z, Z→X, Y→Y.
    /// `r ^= x & !z; swap(x, z)`.
    pub fn sqrt_y(&mut self, q: usize) {
        self.check(q);
        let (w, m) = (q / 64, 1u64 << (q % 64));
        for i in 0..2 * self.n {
            let o = i * self.words + w;
            let xb = self.x[o] & m != 0;
            let zb = self.z[o] & m != 0;
            if xb && !zb {
                self.r_flip(i);
            }
            if xb != zb {
                self.x[o] ^= m;
                self.z[o] ^= m;
            }
        }
    }

    /// √Y†: X→Z, Z→−X, Y→Y. `r ^= !x & z; swap(x, z)`.
    pub fn sqrt_y_dg(&mut self, q: usize) {
        self.check(q);
        let (w, m) = (q / 64, 1u64 << (q % 64));
        for i in 0..2 * self.n {
            let o = i * self.words + w;
            let xb = self.x[o] & m != 0;
            let zb = self.z[o] & m != 0;
            if !xb && zb {
                self.r_flip(i);
            }
            if xb != zb {
                self.x[o] ^= m;
                self.z[o] ^= m;
            }
        }
    }

    /// CNOT with control `c`, target `t`:
    /// `r ^= x_c & z_t & (x_t == z_c); x_t ^= x_c; z_c ^= z_t`.
    ///
    /// # Panics
    ///
    /// Panics when `c == t` (callers route the degenerate `cx q, q`
    /// through [`Tableau::apply`], which treats it as the identity —
    /// the statevec reference semantics).
    pub fn cnot(&mut self, c: usize, t: usize) {
        self.check(c);
        self.check(t);
        assert_ne!(c, t, "cnot needs distinct operands");
        let (wc, mc) = (c / 64, 1u64 << (c % 64));
        let (wt, mt) = (t / 64, 1u64 << (t % 64));
        for i in 0..2 * self.n {
            let oc = i * self.words + wc;
            let ot = i * self.words + wt;
            let xc = self.x[oc] & mc != 0;
            let zc = self.z[oc] & mc != 0;
            let xt = self.x[ot] & mt != 0;
            let zt = self.z[ot] & mt != 0;
            if xc && zt && (xt == zc) {
                self.r_flip(i);
            }
            if xc {
                self.x[ot] ^= mt;
            }
            if zt {
                self.z[oc] ^= mc;
            }
        }
    }

    /// CZ (symmetric): `r ^= x_a & x_b & (z_a != z_b); z_a ^= x_b; z_b ^= x_a`.
    ///
    /// # Panics
    ///
    /// Panics when `a == b` (see [`Tableau::cnot`]; `cz q, q` lowers to
    /// `Z q` in [`Tableau::apply`]).
    pub fn cz(&mut self, a: usize, b: usize) {
        self.check(a);
        self.check(b);
        assert_ne!(a, b, "cz needs distinct operands");
        let (wa, ma) = (a / 64, 1u64 << (a % 64));
        let (wb, mb) = (b / 64, 1u64 << (b % 64));
        for i in 0..2 * self.n {
            let oa = i * self.words + wa;
            let ob = i * self.words + wb;
            let xa = self.x[oa] & ma != 0;
            let za = self.z[oa] & ma != 0;
            let xb = self.x[ob] & mb != 0;
            let zb = self.z[ob] & mb != 0;
            if xa && xb && (za != zb) {
                self.r_flip(i);
            }
            if xb {
                self.z[oa] ^= ma;
            }
            if xa {
                self.z[ob] ^= mb;
            }
        }
    }

    /// SWAP: exchanges columns `a` and `b` of both bit-planes.
    pub fn swap_qubits(&mut self, a: usize, b: usize) {
        self.check(a);
        self.check(b);
        if a == b {
            return;
        }
        let (wa, ma) = (a / 64, 1u64 << (a % 64));
        let (wb, mb) = (b / 64, 1u64 << (b % 64));
        for i in 0..2 * self.n {
            let oa = i * self.words + wa;
            let ob = i * self.words + wb;
            if (self.x[oa] & ma != 0) != (self.x[ob] & mb != 0) {
                self.x[oa] ^= ma;
                self.x[ob] ^= mb;
            }
            if (self.z[oa] & ma != 0) != (self.z[ob] & mb != 0) {
                self.z[oa] ^= ma;
                self.z[ob] ^= mb;
            }
        }
    }

    // --- gate-level dispatch --------------------------------------------

    /// Applies one unitary Clifford gate (or [`Gate::Barrier`], a
    /// no-op).
    ///
    /// `Rx`/`Ry`/`Rz`/`Zz`/`Xx` at angles on the π/2 grid and `Cphase`
    /// on the π grid (both within
    /// [`ANGLE_TOL`](tilt_circuit::clifford::ANGLE_TOL)) lower to the
    /// primitive conjugations above; any other angle — and `T`/`Tdg`/
    /// `Toffoli` always — returns [`NotClifford`] without touching the
    /// tableau. Degenerate repeated-operand spellings (`cx q, q` …)
    /// keep the state-vector reference semantics.
    ///
    /// # Panics
    ///
    /// Panics on [`Gate::Measure`] / [`Gate::Reset`]: those need a
    /// randomness source — use [`Tableau::measure`] / [`Tableau::reset`].
    pub fn apply(&mut self, gate: &Gate) -> Result<(), NotClifford> {
        match *gate {
            Gate::H(q) => self.h(q.index()),
            Gate::X(q) => self.x_gate(q.index()),
            Gate::Y(q) => self.y_gate(q.index()),
            Gate::Z(q) => self.z_gate(q.index()),
            Gate::S(q) => self.s(q.index()),
            Gate::Sdg(q) => self.sdg(q.index()),
            Gate::SqrtX(q) => self.sqrt_x(q.index()),
            Gate::SqrtY(q) => self.sqrt_y(q.index()),
            Gate::T(_) | Gate::Tdg(_) | Gate::Toffoli(..) => return Err(NotClifford),
            Gate::Rx(q, t) => match half_pi_steps(t).ok_or(NotClifford)? {
                0 => {}
                1 => self.sqrt_x(q.index()),
                2 => self.x_gate(q.index()),
                _ => self.sqrt_x_dg(q.index()),
            },
            Gate::Ry(q, t) => match half_pi_steps(t).ok_or(NotClifford)? {
                0 => {}
                1 => self.sqrt_y(q.index()),
                2 => self.y_gate(q.index()),
                _ => self.sqrt_y_dg(q.index()),
            },
            Gate::Rz(q, t) => match half_pi_steps(t).ok_or(NotClifford)? {
                0 => {}
                1 => self.s(q.index()),
                2 => self.z_gate(q.index()),
                _ => self.sdg(q.index()),
            },
            Gate::Cnot(c, t) => {
                // `cx q, q` is the identity in the reference semantics.
                if c != t {
                    self.cnot(c.index(), t.index());
                }
            }
            Gate::Cz(a, b) => {
                if a == b {
                    // `cz q, q` acts as `Z q`.
                    self.z_gate(a.index());
                } else {
                    self.cz(a.index(), b.index());
                }
            }
            Gate::Swap(a, b) => self.swap_qubits(a.index(), b.index()),
            Gate::Cphase(a, b, t) => {
                if pi_steps(t).ok_or(NotClifford)? == 1 {
                    if a == b {
                        // `cp(π) q, q` is `Z q` (phase on |1⟩).
                        self.z_gate(a.index());
                    } else {
                        self.cz(a.index(), b.index());
                    }
                }
            }
            Gate::Zz(a, b, t) => {
                let k = half_pi_steps(t).ok_or(NotClifford)?;
                // `rzz` on a repeated operand is exp(-iθ/2·Z²) = global
                // phase = identity.
                if a != b {
                    self.zz_steps(a.index(), b.index(), k);
                }
            }
            Gate::Xx(a, b, t) => {
                let k = half_pi_steps(t).ok_or(NotClifford)?;
                // Same degeneracy as `rzz`: X² = I.
                if a != b {
                    // XX(θ) = (H⊗H) · ZZ(θ) · (H⊗H).
                    self.h(a.index());
                    self.h(b.index());
                    self.zz_steps(a.index(), b.index(), k);
                    self.h(a.index());
                    self.h(b.index());
                }
            }
            Gate::Measure(_) | Gate::Reset(_) => {
                panic!("measurement needs randomness: use Tableau::measure / Tableau::reset")
            }
            Gate::Barrier => {}
        }
        Ok(())
    }

    /// `ZZ(k·π/2)` on distinct qubits: `k=1` is `CX·S_b·CX` (the
    /// diagonal `diag(1, i, i, 1)` up to global phase), `k=2` is
    /// `Z⊗Z`, `k=3` the inverse of `k=1`.
    fn zz_steps(&mut self, a: usize, b: usize, k: u8) {
        match k {
            0 => {}
            1 => {
                self.cnot(a, b);
                self.s(b);
                self.cnot(a, b);
            }
            2 => {
                self.z_gate(a);
                self.z_gate(b);
            }
            _ => {
                self.cnot(a, b);
                self.sdg(b);
                self.cnot(a, b);
            }
        }
    }

    // --- measurement ----------------------------------------------------

    /// Word-parallel phase contribution of multiplying the Pauli pair
    /// `(x1, z1) · (x2, z2)` per qubit: `+1` per position where the
    /// product gains a factor `+i`, `−1` per `−i`.
    #[inline]
    fn phase_contrib(x1: u64, z1: u64, x2: u64, z2: u64) -> i32 {
        let xo = x1 & !z1; // src is X there
        let yo = x1 & z1; // src is Y
        let zo = !x1 & z1; // src is Z
        let plus = (xo & x2 & z2) | (yo & z2 & !x2) | (zo & x2 & !z2);
        let minus = (xo & z2 & !x2) | (yo & x2 & !z2) | (zo & x2 & z2);
        plus.count_ones() as i32 - minus.count_ones() as i32
    }

    /// Row `dst` ← row `src` · row `dst` (the CHP `rowsum`): XORs the
    /// bit-planes and resolves the sign from the per-qubit `±i`
    /// factors.
    ///
    /// When the rows commute — always the case for stabilizer and
    /// scratch destinations — the factors multiply out to `±1` and the
    /// sign bit is exact. Measurement also rowsums onto *destabilizer*
    /// rows whose partner anticommutes with `src`, leaving an odd
    /// (`±i`) phase; destabilizer signs are never read (they only
    /// guide which stabilizers multiply into the scratch row), so the
    /// truncation to one bit is harmless, exactly as in CHP.
    fn rowsum(&mut self, dst: usize, src: usize) {
        let w = self.words;
        let mut phase: i32 = 2 * (self.r_bit(dst) as i32) + 2 * (self.r_bit(src) as i32);
        for k in 0..w {
            let x1 = self.x[src * w + k];
            let z1 = self.z[src * w + k];
            let x2 = self.x[dst * w + k];
            let z2 = self.z[dst * w + k];
            phase += Self::phase_contrib(x1, z1, x2, z2);
            self.x[dst * w + k] = x2 ^ x1;
            self.z[dst * w + k] = z2 ^ z1;
        }
        let phase = phase.rem_euclid(4);
        debug_assert!(
            phase % 2 == 0 || dst < self.n,
            "odd rowsum phase on a sign-bearing row"
        );
        self.r_set(dst, phase >= 2);
    }

    /// Measures qubit `q` in the computational basis.
    ///
    /// The outcome is **random** iff some stabilizer anticommutes with
    /// `Z_q` (has an X bit at column `q`) — then `random_bit` is
    /// consulted exactly once for the fresh coin flip and the tableau
    /// collapses onto the corresponding eigenspace. Otherwise the
    /// outcome is **deterministic**: the scratch row accumulates the
    /// product of the stabilizers whose destabilizer partners
    /// anticommute with `Z_q`, whose sign is the fixed outcome, and the
    /// state is unchanged.
    pub fn measure(&mut self, q: usize, random_bit: impl FnOnce() -> bool) -> Measurement {
        self.check(q);
        let (w, m) = (q / 64, 1u64 << (q % 64));
        let n = self.n;
        let has_x = |t: &Self, row: usize| t.x[row * t.words + w] & m != 0;
        if let Some(p) = (n..2 * n).find(|&row| has_x(self, row)) {
            // Random outcome: Z_q anticommutes with stabilizer p.
            for i in (0..2 * n).filter(|&i| i != p) {
                if has_x(self, i) {
                    self.rowsum(i, p);
                }
            }
            // Row p retires to the destabilizer slot; the new
            // stabilizer is ±Z_q with a fresh random sign.
            let (dst, src) = (p - n, p);
            for k in 0..self.words {
                self.x[dst * self.words + k] = self.x[src * self.words + k];
                self.z[dst * self.words + k] = self.z[src * self.words + k];
                self.x[src * self.words + k] = 0;
                self.z[src * self.words + k] = 0;
            }
            self.r_set(dst, self.r_bit(src));
            self.z[p * self.words + w] |= m;
            let outcome = random_bit();
            self.r_set(p, outcome);
            Measurement {
                outcome,
                deterministic: false,
            }
        } else {
            // Deterministic: accumulate into the scratch row 2n.
            let scratch = 2 * n;
            for k in 0..self.words {
                self.x[scratch * self.words + k] = 0;
                self.z[scratch * self.words + k] = 0;
            }
            self.r_set(scratch, false);
            for i in 0..n {
                if has_x(self, i) {
                    self.rowsum(scratch, i + n);
                }
            }
            Measurement {
                outcome: self.r_bit(scratch),
                deterministic: true,
            }
        }
    }

    /// Resets qubit `q` to `|0⟩`: measure, then flip when the outcome
    /// was 1. Returns the pre-reset measurement.
    pub fn reset(&mut self, q: usize, random_bit: impl FnOnce() -> bool) -> Measurement {
        let m = self.measure(q, random_bit);
        if m.outcome {
            self.x_gate(q);
        }
        m
    }
}
