//! Stabilizer (Clifford) simulation for QEC-scale workloads.
//!
//! An Aaronson–Gottesman CHP tableau simulator
//! ([arXiv:quant-ph/0406196]) over the workspace's circuit IR. Where
//! the dense state vector needs `2^n` amplitudes — capping the engine
//! at a couple dozen qubits — the tableau stores `~n²/2` **bits**
//! (0.5 MB at 1000 qubits), so syndrome-extraction circuits for
//! 500+-qubit error-correction experiments simulate in milliseconds.
//! The price: only Clifford programs qualify. Gates outside the group
//! (`t`, `ccx`, rotations off the π/2 grid, `cp` off the π grid) are
//! rejected with a structured [`NonCliffordGate`] error naming the
//! gate and its program index, never silently approximated.
//!
//! [arXiv:quant-ph/0406196]: https://arxiv.org/abs/quant-ph/0406196
//!
//! # Example
//!
//! ```
//! use tilt_circuit::{Circuit, Qubit};
//!
//! // 500-qubit GHZ state: far beyond any dense simulator.
//! let n = 500;
//! let mut c = Circuit::new(n);
//! c.h(Qubit(0));
//! for q in 1..n {
//!     c.cnot(Qubit(0), Qubit(q));
//! }
//! for q in 0..n {
//!     c.measure(Qubit(q));
//! }
//! let run = tilt_stabilizer::run(&c, 42).unwrap();
//! // All 500 bits agree; only the first coin flip was random.
//! assert_eq!(run.random_measurements, 1);
//! assert!(run.outcomes.iter().all(|&b| b == run.outcomes[0]));
//! ```

mod tableau;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tilt_circuit::{Circuit, Gate};

pub use tableau::{Measurement, NotClifford, Tableau};

/// A gate the stabilizer backend cannot simulate, with its position.
///
/// `gate` is the display form (e.g. `t q[3]`), `index` its position in
/// the program's gate list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NonCliffordGate {
    /// Display form of the offending gate.
    pub gate: String,
    /// Index of the gate in the circuit's gate list.
    pub index: usize,
}

impl std::fmt::Display for NonCliffordGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "non-Clifford gate `{}` at index {}: the stabilizer backend only simulates \
             Clifford programs (rotations must sit on the \u{3c0}/2 grid, cp on the \u{3c0} grid)",
            self.gate, self.index
        )
    }
}

impl std::error::Error for NonCliffordGate {}

/// The result of [`run`]: measurement outcomes in program order plus
/// determinism accounting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StabilizerRun {
    /// One bit per `measure` gate, in program order.
    pub outcomes: Vec<bool>,
    /// How many of those outcomes were fixed by the state.
    pub deterministic_measurements: usize,
    /// How many were fresh coin flips.
    pub random_measurements: usize,
}

impl StabilizerRun {
    /// The outcomes as a `0`/`1` string in program order (empty when
    /// the program has no `measure` gates).
    pub fn bitstring(&self) -> String {
        self.outcomes
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect()
    }
}

/// Runs `circuit` on a fresh tableau, flipping coins from a
/// [`SmallRng`] seeded with `seed` (same seed ⇒ same outcomes).
///
/// `reset` gates consume randomness when the collapsed qubit was in
/// superposition but do not contribute to `outcomes`. Returns
/// [`NonCliffordGate`] at the first unsupported gate; the partial state
/// is discarded.
pub fn run(circuit: &Circuit, seed: u64) -> Result<StabilizerRun, NonCliffordGate> {
    let mut t = Tableau::new(circuit.n_qubits());
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = StabilizerRun {
        outcomes: Vec::new(),
        deterministic_measurements: 0,
        random_measurements: 0,
    };
    for (index, gate) in circuit.iter().enumerate() {
        match gate {
            Gate::Measure(q) => {
                let m = t.measure(q.index(), || rng.gen());
                out.outcomes.push(m.outcome);
                if m.deterministic {
                    out.deterministic_measurements += 1;
                } else {
                    out.random_measurements += 1;
                }
            }
            Gate::Reset(q) => {
                t.reset(q.index(), || rng.gen());
            }
            unitary => t.apply(unitary).map_err(|NotClifford| NonCliffordGate {
                gate: unitary.to_string(),
                index,
            })?,
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilt_circuit::Qubit;
    use tilt_statevec::State;

    fn q(i: usize) -> Qubit {
        Qubit(i)
    }

    /// Marginal P(qubit = 1) from a dense state.
    fn prob_one(state: &State, qubit: usize) -> f64 {
        (0..1usize << state.n_qubits())
            .filter(|x| x & (1 << qubit) != 0)
            .map(|x| state.probability_of(x))
            .sum()
    }

    /// Cross-checks every qubit's marginal between the two backends:
    /// deterministic tableau outcomes must match statevec probability
    /// 0/1, random ones must sit at 1/2.
    fn assert_matches_statevec(c: &Circuit) {
        let state = State::zero(c.n_qubits()).run(c);
        let mut t = Tableau::new(c.n_qubits());
        for g in c {
            t.apply(g).unwrap();
        }
        for qubit in 0..c.n_qubits() {
            let p = prob_one(&state, qubit);
            let m = t.clone().measure(qubit, || false);
            if m.deterministic {
                let want = if m.outcome { 1.0 } else { 0.0 };
                assert!(
                    (p - want).abs() < 1e-9,
                    "qubit {qubit}: tableau fixed {want}, statevec P(1) = {p}"
                );
            } else {
                assert!(
                    (p - 0.5).abs() < 1e-9,
                    "qubit {qubit}: tableau random, statevec P(1) = {p}"
                );
            }
        }
    }

    #[test]
    fn fresh_tableau_measures_all_zero() {
        let mut t = Tableau::new(5);
        for i in 0..5 {
            let m = t.measure(i, || panic!("must be deterministic"));
            assert!(m.deterministic);
            assert!(!m.outcome);
        }
    }

    #[test]
    fn x_flips_the_outcome() {
        let mut t = Tableau::new(2);
        t.x_gate(1);
        assert_eq!(
            t.measure(1, || unreachable!()),
            Measurement {
                outcome: true,
                deterministic: true
            }
        );
        assert!(!t.measure(0, || unreachable!()).outcome);
    }

    #[test]
    fn bell_pair_correlates() {
        for coin in [false, true] {
            let mut t = Tableau::new(2);
            t.h(0);
            t.cnot(0, 1);
            let first = t.measure(0, || coin);
            assert!(!first.deterministic);
            assert_eq!(first.outcome, coin);
            let second = t.measure(1, || unreachable!("fixed by the first"));
            assert!(second.deterministic);
            assert_eq!(second.outcome, coin);
        }
    }

    #[test]
    fn ghz_collapses_every_qubit_together() {
        let n = 64 + 3; // straddle a word boundary
        let mut t = Tableau::new(n);
        t.h(0);
        for i in 1..n {
            t.cnot(0, i);
        }
        let first = t.measure(0, || true);
        assert!(!first.deterministic);
        for i in 1..n {
            let m = t.measure(i, || unreachable!());
            assert!(m.deterministic);
            assert!(m.outcome);
        }
    }

    #[test]
    fn hzh_is_x() {
        let mut t = Tableau::new(1);
        t.h(0);
        t.z_gate(0);
        t.h(0);
        assert_eq!(
            t.measure(0, || unreachable!()),
            Measurement {
                outcome: true,
                deterministic: true
            }
        );
    }

    #[test]
    fn s_squared_is_z() {
        let mut a = Tableau::new(1);
        a.h(0);
        a.s(0);
        a.s(0);
        a.h(0);
        let mut b = Tableau::new(1);
        b.h(0);
        b.z_gate(0);
        b.h(0);
        assert_eq!(
            a.measure(0, || unreachable!()).outcome,
            b.measure(0, || unreachable!()).outcome
        );
    }

    #[test]
    fn s_then_sdg_is_identity() {
        let mut t = Tableau::new(1);
        t.h(0);
        t.s(0);
        t.sdg(0);
        t.h(0);
        let m = t.measure(0, || unreachable!());
        assert!(m.deterministic);
        assert!(!m.outcome);
    }

    #[test]
    fn sqrt_gates_square_to_paulis() {
        let mut t = Tableau::new(2);
        t.sqrt_x(0);
        t.sqrt_x(0); // = X
        t.sqrt_y(1);
        t.sqrt_y(1); // = Y
        for i in 0..2 {
            let m = t.measure(i, || unreachable!());
            assert!(m.deterministic);
            assert!(m.outcome, "qubit {i}");
        }
    }

    #[test]
    fn reset_forces_zero_and_consumes_a_coin() {
        let mut t = Tableau::new(1);
        t.h(0);
        let mut flipped = false;
        t.reset(0, || {
            flipped = true;
            true
        });
        assert!(flipped, "superposed qubit needs a coin");
        let m = t.measure(0, || unreachable!());
        assert!(m.deterministic);
        assert!(!m.outcome);
    }

    #[test]
    fn apply_lowers_clifford_angles() {
        use std::f64::consts::{FRAC_PI_2, PI};
        let mut c = Circuit::new(3);
        c.rx(q(0), FRAC_PI_2);
        c.rx(q(0), FRAC_PI_2); // = X
        c.rz(q(1), FRAC_PI_2);
        c.rz(q(1), -FRAC_PI_2); // identity
        c.h(q(2));
        c.rz(q(2), PI); // = Z
        c.h(q(2)); // net X on qubit 2
        let mut t = Tableau::new(3);
        for g in &c {
            t.apply(g).unwrap();
        }
        assert!(t.measure(0, || unreachable!()).outcome);
        assert!(!t.measure(1, || unreachable!()).outcome);
        assert!(t.measure(2, || unreachable!()).outcome);
    }

    #[test]
    fn apply_rejects_non_clifford() {
        let mut t = Tableau::new(2);
        assert_eq!(t.apply(&Gate::T(q(0))), Err(NotClifford));
        assert_eq!(t.apply(&Gate::Rz(q(0), 0.3)), Err(NotClifford));
        assert_eq!(
            t.apply(&Gate::Cphase(q(0), q(1), std::f64::consts::FRAC_PI_2)),
            Err(NotClifford)
        );
        // The failed applications left the state untouched.
        assert!(!t.measure(0, || unreachable!()).outcome);
    }

    #[test]
    fn degenerate_operands_match_reference_semantics() {
        use std::f64::consts::PI;
        let mut t = Tableau::new(1);
        // cx q,q and swap q,q are the identity; rzz/rxx on one qubit are
        // global phase.
        t.apply(&Gate::Cnot(q(0), q(0))).unwrap();
        t.apply(&Gate::Swap(q(0), q(0))).unwrap();
        t.apply(&Gate::Zz(q(0), q(0), PI / 2.0)).unwrap();
        t.apply(&Gate::Xx(q(0), q(0), PI / 2.0)).unwrap();
        assert!(!t.measure(0, || unreachable!()).outcome);
        // cz q,q and cp(π) q,q act as Z.
        let mut t = Tableau::new(1);
        t.h(0);
        t.apply(&Gate::Cz(q(0), q(0))).unwrap();
        t.h(0); // HZH = X
        assert!(t.measure(0, || unreachable!()).outcome);
        let mut t = Tableau::new(1);
        t.h(0);
        t.apply(&Gate::Cphase(q(0), q(0), PI)).unwrap();
        t.h(0);
        assert!(t.measure(0, || unreachable!()).outcome);
    }

    #[test]
    fn marginals_match_statevec_on_handwritten_circuits() {
        use std::f64::consts::{FRAC_PI_2, PI};
        let mut c = Circuit::new(4);
        c.h(q(0));
        c.cnot(q(0), q(1));
        c.s(q(1));
        c.sdg(q(2));
        c.zz(q(1), q(2), FRAC_PI_2);
        c.xx(q(2), q(3), -FRAC_PI_2);
        c.cphase(q(0), q(3), PI);
        c.ry(q(3), FRAC_PI_2);
        c.cz(q(0), q(2));
        c.swap(q(1), q(3));
        c.rx(q(2), -FRAC_PI_2);
        assert_matches_statevec(&c);
    }

    #[test]
    fn marginals_match_statevec_on_random_clifford_circuits() {
        use rand::Rng;
        let mut rng = SmallRng::seed_from_u64(0xC11F);
        for trial in 0..40 {
            let n = rng.gen_range(1usize..=6);
            let mut c = Circuit::new(n);
            for _ in 0..rng.gen_range(5usize..40) {
                let a = rng.gen_range(0..n);
                match rng.gen_range(0u8..14) {
                    0 => {
                        c.h(q(a));
                    }
                    1 => {
                        c.x(q(a));
                    }
                    2 => {
                        c.y(q(a));
                    }
                    3 => {
                        c.z(q(a));
                    }
                    4 => {
                        c.s(q(a));
                    }
                    5 => {
                        c.sdg(q(a));
                    }
                    6 => {
                        c.push(Gate::SqrtX(q(a)));
                    }
                    7 => {
                        c.push(Gate::SqrtY(q(a)));
                    }
                    8 => {
                        let k = rng.gen_range(0u8..4) as f64;
                        c.rz(q(a), k * std::f64::consts::FRAC_PI_2);
                    }
                    _ if n >= 2 => {
                        let mut b = rng.gen_range(0..n - 1);
                        if b >= a {
                            b += 1;
                        }
                        match rng.gen_range(0u8..5) {
                            0 => {
                                c.cnot(q(a), q(b));
                            }
                            1 => {
                                c.cz(q(a), q(b));
                            }
                            2 => {
                                c.swap(q(a), q(b));
                            }
                            3 => {
                                let k = rng.gen_range(1u8..4) as f64;
                                c.zz(q(a), q(b), k * std::f64::consts::FRAC_PI_2);
                            }
                            _ => {
                                let k = rng.gen_range(1u8..4) as f64;
                                c.xx(q(a), q(b), k * std::f64::consts::FRAC_PI_2);
                            }
                        }
                    }
                    _ => {
                        c.h(q(a));
                    }
                }
            }
            assert_matches_statevec(&c);
            let _ = trial;
        }
    }

    #[test]
    fn run_reports_error_with_gate_and_index() {
        let mut c = Circuit::new(2);
        c.h(q(0));
        c.t(q(1));
        let err = run(&c, 0).unwrap_err();
        assert_eq!(err.index, 1);
        assert!(err.gate.contains('t'), "display form: {}", err.gate);
        let msg = err.to_string();
        assert!(msg.contains("non-Clifford"), "{msg}");
        assert!(msg.contains("index 1"), "{msg}");
    }

    #[test]
    fn run_is_deterministic_per_seed() {
        let mut c = Circuit::new(8);
        for i in 0..8 {
            c.h(q(i));
        }
        for i in 0..8 {
            c.measure(q(i));
        }
        let a = run(&c, 7).unwrap();
        let b = run(&c, 7).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.random_measurements, 8);
        assert_eq!(a.deterministic_measurements, 0);
        // Different seeds must disagree somewhere on 8 coin flips
        // (probability 2⁻⁸ of collision per seed pair; these are fixed).
        let c2 = run(&c, 8).unwrap();
        assert_ne!(a.outcomes, c2.outcomes);
    }

    #[test]
    fn repetition_code_syndrome_round_is_quiet() {
        // d=3 repetition code, interleaved data/ancilla: data at 0,2,4;
        // ancillas at 1,3. No errors injected ⇒ syndromes read 0
        // deterministically.
        let mut c = Circuit::new(5);
        for &(d, a) in &[(0, 1), (2, 1), (2, 3), (4, 3)] {
            c.cnot(q(d), q(a));
        }
        for &a in &[1, 3] {
            c.measure(q(a));
        }
        let r = run(&c, 0).unwrap();
        assert_eq!(r.bitstring(), "00");
        assert_eq!(r.deterministic_measurements, 2);
    }

    #[test]
    fn large_width_is_cheap() {
        // 1001 qubits: utterly out of reach for the dense backend, and
        // word-boundary-straddling for the tableau.
        let n = 1001;
        let mut c = Circuit::new(n);
        c.h(q(0));
        for i in 1..n {
            c.cnot(q(i - 1), q(i));
        }
        for i in 0..n {
            c.measure(q(i));
        }
        let r = run(&c, 3).unwrap();
        assert_eq!(r.outcomes.len(), n);
        assert_eq!(r.random_measurements, 1);
        assert!(r.outcomes.iter().all(|&b| b == r.outcomes[0]));
    }
}
