//! Static verification of ELU-array compilations.
//!
//! The scaled rule pack of the program-invariant verifier (see
//! `tilt_compiler::verify` for the rule engine and diagnostic format).
//! The `scaled/measured-unreset` rule generalizes the PR 4 regression
//! fix — a comm-slot ion that was measured for one teleportation must
//! be reset before the next remote gate replays the template onto it —
//! from a one-off test into an invariant every compilation is checked
//! against.
//!
//! | rule | invariant |
//! |------|-----------|
//! | `scaled/measured-unreset` | no gate acts on an ion that was measured and not yet reset |
//! | `scaled/comm-slot-budget` | every operand fits the ELU tape (data ions below the comm block, comm traffic inside the [`COMM_SLOTS`](crate::COMM_SLOTS) block) and comm-ion measurements account for exactly two per recorded EPR pair |
//! | `tilt/*` | each ELU's LinQ output passes the full TILT tape rule pack |

use crate::program::ScaledProgram;
use crate::spec::COMM_SLOTS;
use tilt_circuit::Gate;
use tilt_compiler::verify::{verify_tilt, Diagnostic};

/// Runs the scaled rule pack (plus the TILT pack per ELU) over one
/// compiled ELU array.
pub fn verify_scaled(program: &ScaledProgram) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let capacity = program.spec.data_capacity();
    let ions_per_elu = capacity + COMM_SLOTS;
    let mut comm_measures = 0usize;

    for (e, out) in program.elu_outputs.iter().enumerate() {
        // Every scheduled operand must fit the ELU tape.
        for (i, (g, _)) in out.program.gates().enumerate() {
            for q in g.qubits() {
                if q.index() >= ions_per_elu {
                    diags.push(Diagnostic::error(
                        "scaled/comm-slot-budget",
                        i,
                        format!(
                            "elu {e}: {g} touches position {}, past the {capacity} data + \
                             {COMM_SLOTS} comm ions",
                            q.index()
                        ),
                    ));
                }
            }
        }

        // The PR 4 bug class: gate on a measured, unreset ion. The walk
        // runs over the *routed* circuit — the scheduled stream
        // decomposes swaps into native gates, which hides where the
        // collapsed state travels.
        let mut measured = vec![false; ions_per_elu];
        for (i, g) in out.routed.circuit.iter().enumerate() {
            match g {
                Gate::Measure(q) if q.index() < ions_per_elu => {
                    measured[q.index()] = true;
                }
                Gate::Reset(q) if q.index() < ions_per_elu => {
                    measured[q.index()] = false;
                }
                // A SWAP is unitary even on a collapsed ion: it relocates
                // the dirty state rather than computing on it, so the
                // taint travels with it.
                Gate::Swap(a, b) if a.index() < ions_per_elu && b.index() < ions_per_elu => {
                    measured.swap(a.index(), b.index());
                }
                Gate::Barrier => {}
                g => {
                    for q in g.qubits() {
                        if q.index() < ions_per_elu && measured[q.index()] {
                            diags.push(Diagnostic::error(
                                "scaled/measured-unreset",
                                i,
                                format!(
                                    "elu {e}: {g} acts on position {} after it was measured \
                                     and before any reset",
                                    q.index()
                                ),
                            ));
                        }
                    }
                }
            }
        }

        // Comm-ion measurements are counted in *logical* coordinates:
        // routing may swap a comm ion away from its home position, so
        // the physical measure target says nothing. Replay the routed
        // circuit's mapping instead.
        let mut m = out.routed.initial_mapping.clone();
        for g in &out.routed.circuit {
            match g {
                Gate::Swap(a, b) if a.index() < m.len() && b.index() < m.len() => {
                    m.swap_positions(a.index(), b.index());
                }
                Gate::Measure(q)
                    if q.index() < m.len() && m.logical_at(q.index()).index() >= capacity =>
                {
                    comm_measures += 1;
                }
                _ => {}
            }
        }

        // Each ELU is an ordinary TILT compilation; its artifacts must
        // pass the tape rules against the spec's own router cap.
        let cap = program.spec.router.max_swap_span(*out.program.spec());
        for mut d in verify_tilt(out, cap) {
            d.message = format!("elu {e}: {}", d.message);
            diags.push(d);
        }
    }

    // Gate teleportation measures one comm ion in each endpoint ELU, so
    // the comm-ion measurement count pins down the EPR ledger.
    if comm_measures != 2 * program.epr_pairs {
        diags.push(Diagnostic::error(
            "scaled/comm-slot-budget",
            0,
            format!(
                "{} comm-ion measurements across the array, but {} EPR pairs were recorded \
                 (expected {})",
                comm_measures,
                program.epr_pairs,
                2 * program.epr_pairs
            ),
        ));
    }
    diags
}

/// Incremental evaluation of the window-applicable half of
/// `scaled/comm-slot-budget` over a sharded streaming compile's
/// per-ELU op increments.
///
/// The operand-fits-the-tape predicate is per-op, so it can run on
/// each increment as a shard delivers it. The rule's other half (the
/// EPR ledger balanced against comm-ion measurements) and the
/// `scaled/measured-unreset` replay both need whole-array artifacts
/// and stay in [`verify_scaled`].
///
/// Diagnostics carry the same indices the monolithic walk would
/// assign: the per-ELU *gate* index (moves are not counted), tracked
/// globally across pushes for each ELU.
#[derive(Debug)]
pub struct StreamScaledVerifier {
    capacity: usize,
    next_gate_index: Vec<usize>,
    diags: Vec<Diagnostic>,
}

impl StreamScaledVerifier {
    /// A verifier for a streaming compile over `n_elus` shards on a
    /// spec with `capacity` data ions per ELU.
    pub fn new(capacity: usize, n_elus: usize) -> StreamScaledVerifier {
        StreamScaledVerifier {
            capacity,
            next_gate_index: vec![0; n_elus],
            diags: Vec::new(),
        }
    }

    /// Checks one ELU's op increment; that ELU's gate indices continue
    /// from its prior pushes.
    ///
    /// # Panics
    ///
    /// Panics if `elu` is outside the shard count given to
    /// [`StreamScaledVerifier::new`].
    pub fn push(&mut self, elu: usize, ops: &[tilt_compiler::TiltOp]) {
        let ions_per_elu = self.capacity + COMM_SLOTS;
        let capacity = self.capacity;
        for op in ops {
            let tilt_compiler::TiltOp::Gate { gate: g, .. } = op else {
                continue;
            };
            let i = self.next_gate_index[elu];
            self.next_gate_index[elu] += 1;
            for q in g.qubits() {
                if q.index() >= ions_per_elu {
                    self.diags.push(Diagnostic::error(
                        "scaled/comm-slot-budget",
                        i,
                        format!(
                            "elu {elu}: {g} touches position {}, past the {capacity} data + \
                             {COMM_SLOTS} comm ions",
                            q.index()
                        ),
                    ));
                }
            }
        }
    }

    /// Total gates checked so far across every ELU.
    pub fn gates_seen(&self) -> usize {
        self.next_gate_index.iter().sum()
    }

    /// Findings accumulated so far (borrowed;
    /// [`StreamScaledVerifier::finish`] consumes).
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Consumes the verifier, returning every finding.
    pub fn finish(self) -> Vec<Diagnostic> {
        self.diags
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::compile_scaled;
    use crate::spec::ScaleSpec;
    use tilt_circuit::{Circuit, Qubit};
    use tilt_compiler::{TiltOp, TiltProgram};

    fn remote_heavy() -> ScaledProgram {
        let mut c = Circuit::new(16);
        for _ in 0..4 {
            c.cnot(Qubit(7), Qubit(8));
        }
        compile_scaled(&c, &ScaleSpec::new(10, 4).unwrap()).unwrap()
    }

    #[test]
    fn clean_compile_verifies_clean() {
        assert_eq!(verify_scaled(&remote_heavy()), Vec::new());
    }

    #[test]
    fn dropped_reset_is_diagnosed() {
        let mut p = remote_heavy();
        // Strip every reset from ELU 0's artifacts: the slot-0 comm ion
        // is then reused while still measured — the exact PR 4 bug
        // shape.
        let out = &mut p.elu_outputs[0];
        let spec = *out.program.spec();
        let ops: Vec<TiltOp> = out
            .program
            .ops()
            .iter()
            .filter(|op| {
                !matches!(
                    op,
                    TiltOp::Gate {
                        gate: Gate::Reset(_),
                        ..
                    }
                )
            })
            .copied()
            .collect();
        out.program = TiltProgram::new_unchecked(spec, ops);
        let width = out.routed.circuit.n_qubits();
        let gates: Vec<Gate> = out
            .routed
            .circuit
            .iter()
            .filter(|g| !matches!(g, Gate::Reset(_)))
            .copied()
            .collect();
        out.routed.circuit = Circuit::from_gates(width, gates);
        let diags = verify_scaled(&p);
        assert!(
            diags.iter().any(|d| d.rule == "scaled/measured-unreset"),
            "{diags:?}"
        );
    }

    #[test]
    fn epr_ledger_mismatch_is_diagnosed() {
        let mut p = remote_heavy();
        p.epr_pairs += 1;
        let diags = verify_scaled(&p);
        assert!(
            diags.iter().any(|d| d.rule == "scaled/comm-slot-budget"),
            "{diags:?}"
        );
    }

    #[test]
    fn out_of_tape_operand_is_diagnosed() {
        let mut p = remote_heavy();
        let out = &mut p.elu_outputs[0];
        let spec = *out.program.spec();
        let mut ops = out.program.ops().to_vec();
        ops.push(TiltOp::Gate {
            gate: Gate::Rx(Qubit(spec.n_ions()), 0.5),
            head_pos: spec.n_ions() - spec.head_size(),
        });
        out.program = TiltProgram::new_unchecked(spec, ops);
        let diags = verify_scaled(&p);
        assert!(
            diags.iter().any(|d| d.rule == "scaled/comm-slot-budget"),
            "{diags:?}"
        );
    }

    #[test]
    fn stream_verifier_matches_the_monolithic_walk_at_every_window_split() {
        // Corrupt one ELU's op stream, then push each ELU's ops in
        // window partitions: findings must match the monolithic per-op
        // walk exactly, including the per-ELU *gate* indices (moves are
        // not counted), at every split.
        let mut p = remote_heavy();
        let out = &mut p.elu_outputs[1];
        let spec = *out.program.spec();
        let mut ops = out.program.ops().to_vec();
        ops.push(TiltOp::Gate {
            gate: Gate::Rx(Qubit(spec.n_ions()), 0.5),
            head_pos: 0,
        });
        out.program = TiltProgram::new_unchecked(spec, ops);
        let capacity = p.spec.data_capacity();
        let whole: Vec<Diagnostic> = verify_scaled(&p)
            .into_iter()
            .filter(|d| d.rule == "scaled/comm-slot-budget" && d.message.contains("elu 1"))
            .collect();
        assert!(!whole.is_empty());
        for window in [1, 3, 16, usize::MAX] {
            let mut sv = StreamScaledVerifier::new(capacity, p.elu_outputs.len());
            for (e, out) in p.elu_outputs.iter().enumerate() {
                for chunk in out
                    .program
                    .ops()
                    .chunks(window.min(out.program.ops().len()))
                {
                    sv.push(e, chunk);
                }
            }
            let total: usize = p
                .elu_outputs
                .iter()
                .map(|o| o.program.gates().count())
                .sum();
            assert_eq!(sv.gates_seen(), total);
            assert_eq!(sv.finish(), whole, "window {window}");
        }
    }
}
