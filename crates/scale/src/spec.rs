//! ELU-array specification and the photonic-link model.

use std::error::Error;
use std::fmt;
use tilt_compiler::{DeviceSpec, InitialMapping, RouterKind, SchedulerKind};

/// Ion slots reserved per ELU for the photonic communication qubits.
pub const COMM_SLOTS: usize = 2;

/// Photonic-interconnect cost model.
///
/// Heralded ion–photon entanglement is probabilistic; the defaults are in
/// the range of the MUSIQC analyses (EPR fidelity in the mid-90s %,
/// effective generation time around a millisecond after multiplexing).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EprModel {
    /// Fidelity of one distributed EPR pair (applied once per remote
    /// gate).
    pub fidelity: f64,
    /// Effective generation latency per pair, in µs.
    pub generation_us: f64,
}

impl Default for EprModel {
    fn default() -> Self {
        EprModel {
            fidelity: 0.95,
            generation_us: 1000.0,
        }
    }
}

/// A modular machine built from identical TILT ELUs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScaleSpec {
    ions_per_elu: usize,
    head_size: usize,
    /// Photonic-link model.
    pub epr: EprModel,
    /// Swap-insertion policy for every ELU's LinQ instance.
    pub router: RouterKind,
    /// Tape-scheduling policy for every ELU's LinQ instance.
    pub scheduler: SchedulerKind,
    /// Initial-placement strategy for every ELU's LinQ instance.
    pub initial_mapping: InitialMapping,
}

/// Why an ELU-array specification or compilation failed.
#[derive(Clone, Debug, PartialEq)]
pub enum ScaleError {
    /// The per-ELU geometry is unusable.
    InvalidSpec {
        /// Human-readable description.
        reason: String,
    },
    /// An underlying LinQ compilation failed (carries the rendered error).
    EluCompile {
        /// Which ELU failed.
        elu: usize,
        /// Rendered compiler error.
        reason: String,
    },
}

impl fmt::Display for ScaleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScaleError::InvalidSpec { reason } => write!(f, "invalid ELU spec: {reason}"),
            ScaleError::EluCompile { elu, reason } => {
                write!(f, "ELU {elu} failed to compile: {reason}")
            }
        }
    }
}

impl Error for ScaleError {}

impl ScaleSpec {
    /// Creates an ELU template: `ions_per_elu` tape positions (of which
    /// [`COMM_SLOTS`] are communication ions) under a head of
    /// `head_size` lasers, with the default photonic link.
    ///
    /// # Errors
    ///
    /// Rejects ELUs without room for at least two data ions plus the
    /// communication slots, and heads smaller than 2 or wider than the
    /// ELU.
    pub fn new(ions_per_elu: usize, head_size: usize) -> Result<Self, ScaleError> {
        if ions_per_elu < COMM_SLOTS + 2 {
            return Err(ScaleError::InvalidSpec {
                reason: format!(
                    "{ions_per_elu} ions leave no data capacity beside {COMM_SLOTS} comm slots"
                ),
            });
        }
        if head_size < 2 || head_size > ions_per_elu {
            return Err(ScaleError::InvalidSpec {
                reason: format!("head {head_size} invalid for a {ions_per_elu}-ion ELU"),
            });
        }
        Ok(ScaleSpec {
            ions_per_elu,
            head_size,
            epr: EprModel::default(),
            router: RouterKind::default(),
            scheduler: SchedulerKind::default(),
            initial_mapping: InitialMapping::default(),
        })
    }

    /// Replaces the photonic-link model.
    pub fn with_epr(mut self, epr: EprModel) -> Self {
        self.epr = epr;
        self
    }

    /// Replaces the per-ELU swap-insertion policy.
    pub fn with_router(mut self, router: RouterKind) -> Self {
        self.router = router;
        self
    }

    /// Replaces the per-ELU tape-scheduling policy.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Replaces the per-ELU initial-placement strategy.
    pub fn with_initial_mapping(mut self, initial: InitialMapping) -> Self {
        self.initial_mapping = initial;
        self
    }

    /// The per-ELU TILT device this template describes.
    ///
    /// # Errors
    ///
    /// [`ScaleError::InvalidSpec`] when the geometry is not a valid
    /// TILT device (never for a spec built by [`ScaleSpec::new`]).
    pub fn elu_device(&self) -> Result<DeviceSpec, ScaleError> {
        DeviceSpec::new(self.ions_per_elu, self.head_size).map_err(|e| ScaleError::InvalidSpec {
            reason: e.to_string(),
        })
    }

    /// Checks the routing policy against the per-ELU device geometry
    /// and returns that device — the session API calls this once at
    /// engine construction so configuration errors surface before the
    /// first circuit, and `compile_scaled` gets its validated
    /// [`DeviceSpec`] from the same check.
    ///
    /// # Errors
    ///
    /// [`ScaleError::InvalidSpec`] when the router parameters are
    /// inconsistent with the ELU geometry (e.g. `max_swap_len` wider
    /// than the ELU head).
    pub fn validate_policies(&self) -> Result<DeviceSpec, ScaleError> {
        let device = self.elu_device()?;
        self.router
            .validate(device)
            .map_err(|e| ScaleError::InvalidSpec {
                reason: e.to_string(),
            })?;
        Ok(device)
    }

    /// Tape length of each ELU.
    pub fn ions_per_elu(&self) -> usize {
        self.ions_per_elu
    }

    /// Head size of each ELU.
    pub fn head_size(&self) -> usize {
        self.head_size
    }

    /// Data qubits each ELU can host.
    pub fn data_capacity(&self) -> usize {
        self.ions_per_elu - COMM_SLOTS
    }

    /// Number of ELUs needed for `n_qubits` data qubits.
    pub fn elus_for(&self, n_qubits: usize) -> usize {
        n_qubits.div_ceil(self.data_capacity()).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_excludes_comm_slots() {
        let s = ScaleSpec::new(18, 8).unwrap();
        assert_eq!(s.data_capacity(), 16);
        assert_eq!(s.elus_for(64), 4);
        assert_eq!(s.elus_for(65), 5);
        assert_eq!(s.elus_for(1), 1);
    }

    #[test]
    fn rejects_degenerate_elus() {
        assert!(ScaleSpec::new(3, 2).is_err());
        assert!(ScaleSpec::new(18, 1).is_err());
        assert!(ScaleSpec::new(18, 19).is_err());
        assert!(ScaleSpec::new(4, 4).is_ok());
    }

    #[test]
    fn error_messages_render() {
        let e = ScaleSpec::new(2, 2).unwrap_err();
        assert!(e.to_string().contains("data capacity"));
    }
}
