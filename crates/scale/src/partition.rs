//! Qubit partitioning across ELUs.

use crate::spec::{ScaleSpec, COMM_SLOTS};

/// Assignment of logical data qubits to ELUs.
///
/// Contiguous block partitioning: qubit `q` lives in ELU `q / capacity`
/// at local tape position `q % capacity`. The two communication ions sit
/// at the *end* of each ELU's tape (local positions `capacity` and
/// `capacity + 1`), so remote-gate halves are long-distance local gates —
/// which the ELU's own LinQ instance then has to route, exactly like any
/// other traffic.
///
/// Block partitioning is the natural choice for the paper's benchmarks:
/// their interaction graphs are line-like or banded, so cut edges ≈
/// boundary edges. A smarter min-cut partitioner would drop EPR counts
/// further but does not change the architecture trade-off being studied.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    capacity: usize,
    n_elus: usize,
    n_qubits: usize,
}

impl Partition {
    /// Partitions `n_qubits` data qubits under the ELU template `spec`.
    pub fn new(spec: &ScaleSpec, n_qubits: usize) -> Self {
        Partition {
            capacity: spec.data_capacity(),
            n_elus: spec.elus_for(n_qubits),
            n_qubits,
        }
    }

    /// Number of ELUs in use.
    pub fn n_elus(&self) -> usize {
        self.n_elus
    }

    /// Total data qubits partitioned.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// ELU hosting logical qubit `q`.
    #[inline]
    pub fn elu_of(&self, q: usize) -> usize {
        q / self.capacity
    }

    /// Local tape position of logical qubit `q` inside its ELU.
    #[inline]
    pub fn local_of(&self, q: usize) -> usize {
        q % self.capacity
    }

    /// Local tape position of communication ion `slot` (0 or 1).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= COMM_SLOTS`.
    pub fn comm_position(&self, slot: usize) -> usize {
        assert!(slot < COMM_SLOTS, "ELUs have {COMM_SLOTS} comm slots");
        self.capacity + slot
    }

    /// Data qubits resident in ELU `e`.
    pub fn qubits_in(&self, e: usize) -> std::ops::Range<usize> {
        let start = e * self.capacity;
        start..(start + self.capacity).min(self.n_qubits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ScaleSpec {
        ScaleSpec::new(10, 4).unwrap() // capacity 8
    }

    #[test]
    fn block_assignment() {
        let p = Partition::new(&spec(), 20);
        assert_eq!(p.n_elus(), 3);
        assert_eq!(p.elu_of(0), 0);
        assert_eq!(p.elu_of(7), 0);
        assert_eq!(p.elu_of(8), 1);
        assert_eq!(p.local_of(8), 0);
        assert_eq!(p.local_of(19), 3);
    }

    #[test]
    fn comm_positions_follow_data() {
        let p = Partition::new(&spec(), 20);
        assert_eq!(p.comm_position(0), 8);
        assert_eq!(p.comm_position(1), 9);
    }

    #[test]
    #[should_panic(expected = "comm slots")]
    fn comm_slot_bounds_checked() {
        Partition::new(&spec(), 20).comm_position(2);
    }

    #[test]
    fn qubit_ranges_cover_everything_once() {
        let p = Partition::new(&spec(), 20);
        let mut seen = [false; 20];
        for e in 0..p.n_elus() {
            for q in p.qubits_in(e) {
                assert!(!seen[q]);
                seen[q] = true;
                assert_eq!(p.elu_of(q), e);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
