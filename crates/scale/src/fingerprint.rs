//! [`Fingerprint`] implementation for the ELU-array template.
//!
//! A [`ScaleSpec`] carries everything `compile_scaled` consults: the
//! per-ELU geometry, the photonic-link model, and the routing/
//! scheduling/placement policies every ELU's LinQ instance runs under
//! — so its fingerprint (with the shared physical models from
//! `tilt-sim`) completes the scaled backend's compile-cache key.

use crate::spec::{EprModel, ScaleSpec};
use tilt_hash::{Fingerprint, Hasher};

impl Fingerprint for EprModel {
    fn fingerprint_into(&self, h: &mut Hasher) {
        h.write_f64(self.fidelity).write_f64(self.generation_us);
    }
}

impl Fingerprint for ScaleSpec {
    fn fingerprint_into(&self, h: &mut Hasher) {
        h.write_usize(self.ions_per_elu())
            .write_usize(self.head_size());
        self.epr.fingerprint_into(h);
        self.router.fingerprint_into(h);
        self.scheduler.fingerprint_into(h);
        self.initial_mapping.fingerprint_into(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilt_compiler::route::LinqConfig;
    use tilt_compiler::{InitialMapping, RouterKind, SchedulerKind};

    #[test]
    fn every_policy_knob_changes_the_fingerprint() {
        let base = ScaleSpec::new(18, 8).unwrap();
        let variants = [
            ScaleSpec::new(20, 8).unwrap(),
            ScaleSpec::new(18, 6).unwrap(),
            base.with_epr(EprModel {
                fidelity: 0.97,
                ..EprModel::default()
            }),
            base.with_epr(EprModel {
                generation_us: 500.0,
                ..EprModel::default()
            }),
            base.with_router(RouterKind::Linq(LinqConfig::with_max_swap_len(3))),
            base.with_scheduler(SchedulerKind::NaiveNextGate),
            base.with_initial_mapping(InitialMapping::InteractionChain),
        ];
        assert_eq!(
            base.fingerprint(),
            ScaleSpec::new(18, 8).unwrap().fingerprint()
        );
        for v in &variants {
            assert_ne!(base.fingerprint(), v.fingerprint(), "{v:?}");
        }
    }
}
