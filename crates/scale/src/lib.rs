//! Modular TILT scaling: MUSIQC-style ELU arrays with photonic
//! interconnects (§VII of the paper).
//!
//! The paper's scaling discussion proposes using TILT machines as the
//! *element logic units* (ELUs) of a modular architecture (Kim et al.,
//! MUSIQC; Monroe et al., PRA 89 022317): many medium-sized tapes, each
//! with a couple of communication ions that can be entangled with remote
//! ELUs through a reconfigurable photonic switch. Remote two-qubit gates
//! are executed by gate teleportation — one EPR pair plus local
//! CNOT-class gates and measurements in each endpoint ELU.
//!
//! The trade this crate lets you quantify (see `bench --bin scaling`):
//! splitting a wide program over ELUs shortens every chain (per-move
//! heating scales as `√n`, §III-A) and parallelizes tape motion, but each
//! cross-ELU interaction costs an EPR pair of imperfect fidelity and
//! non-trivial generation time.
//!
//! # Example
//!
//! ```
//! use tilt_benchmarks::qaoa::qaoa_maxcut;
//! use tilt_scale::{compile_scaled, estimate_scaled, ScaleSpec};
//! use tilt_sim::{GateTimeModel, NoiseModel};
//!
//! // 32 qubits over ELUs of 18 ions (16 data + 2 communication).
//! let circuit = qaoa_maxcut(32, 2, 1);
//! let spec = ScaleSpec::new(18, 8)?;
//! let program = compile_scaled(&circuit, &spec)?;
//! assert_eq!(program.elu_outputs.len(), 2);
//! let report = estimate_scaled(&program, &NoiseModel::default(), &GateTimeModel::default());
//! assert!(report.success > 0.0);
//! # Ok::<(), tilt_scale::ScaleError>(())
//! ```

mod fingerprint;
mod partition;
mod program;
mod spec;
pub mod streaming;
pub mod verify;

pub use partition::Partition;
pub use program::{compile_scaled, estimate_scaled, ScaleReport, ScaledProgram};
pub use spec::{EprModel, ScaleError, ScaleSpec, COMM_SLOTS};
pub use streaming::{run_scaled_stream, ScaledSink, ScaledStreamSummary, ScaledStreamingCompiler};
pub use verify::{verify_scaled, StreamScaledVerifier};
