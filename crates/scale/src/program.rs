//! Splitting a circuit across ELUs and estimating the modular machine.

use crate::partition::Partition;
use crate::spec::{ScaleError, ScaleSpec};
use tilt_circuit::{Circuit, Gate, Qubit};
use tilt_compiler::{CompileOutput, Compiler};
use tilt_sim::{estimate_success, execution_time_us, ExecTimeModel, GateTimeModel, NoiseModel};

/// A circuit compiled onto an ELU array.
#[derive(Clone, Debug)]
pub struct ScaledProgram {
    /// The ELU template used.
    pub spec: ScaleSpec,
    /// The partition of logical qubits.
    pub partition: Partition,
    /// One LinQ compilation per ELU (local gates plus the local halves of
    /// remote gates).
    pub elu_outputs: Vec<CompileOutput>,
    /// EPR pairs consumed (one per remote two-qubit gate).
    pub epr_pairs: usize,
}

/// Success/time estimate for a [`ScaledProgram`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScaleReport {
    /// Natural log of the overall success probability.
    pub ln_success: f64,
    /// Overall success probability: the product of every ELU's local
    /// success and the EPR fidelity per remote gate.
    pub success: f64,
    /// Remote (cross-ELU) two-qubit gates.
    pub remote_gates: usize,
    /// Makespan estimate in µs: the slowest ELU plus EPR generation.
    /// Generation overlaps up to [`crate::spec::COMM_SLOTS`] pairs in
    /// flight — the compiler alternates comm slots precisely so
    /// back-to-back remote gates can pipeline — so the photonic term is
    /// `ceil(pairs / COMM_SLOTS) · generation_us`, not a fully serial
    /// `pairs · generation_us`.
    pub exec_time_us: f64,
    /// Tape moves summed over all ELUs.
    pub total_moves: usize,
    /// Swaps summed over all ELUs.
    pub total_swaps: usize,
}

impl ScaleReport {
    /// Base-10 log of the success probability.
    pub fn log10_success(&self) -> f64 {
        self.ln_success / std::f64::consts::LN_10
    }
}

/// Compiles `circuit` onto the ELU array described by `spec`.
///
/// The circuit is lowered to two-qubit granularity first. Local gates go
/// to their ELU verbatim (relabelled to local positions). A remote gate
/// between ELUs `A` and `B` is lowered to the gate-teleportation
/// template: in `A`, a CNOT from the data ion onto the communication ion
/// plus its measurement; in `B`, the original interaction applied from
/// the communication ion plus its measurement; one EPR pair is consumed.
/// Each ELU's stream is then compiled by its own LinQ instance.
///
/// # Errors
///
/// Propagates ELU-geometry validation and per-ELU compilation failures.
pub fn compile_scaled(circuit: &Circuit, spec: &ScaleSpec) -> Result<ScaledProgram, ScaleError> {
    let native = tilt_compiler::decompose::decompose(circuit);
    let partition = Partition::new(spec, circuit.n_qubits());
    let n_elus = partition.n_elus();

    let mut streams: Vec<Circuit> = (0..n_elus)
        .map(|_| Circuit::new(spec.ions_per_elu()))
        .collect();
    let mut epr_pairs = 0usize;
    // Per-ELU usage of each comm slot: once a communication ion has
    // hosted (and been measured for) one EPR half, it must be pumped
    // back to |0⟩ before the next remote gate can reuse it.
    let mut comm_used: Vec<[bool; crate::spec::COMM_SLOTS]> =
        vec![[false; crate::spec::COMM_SLOTS]; n_elus];

    for gate in &native {
        match gate {
            Gate::Barrier => {
                for s in &mut streams {
                    s.barrier();
                }
            }
            g if g.is_two_qubit() => {
                let qs = g.qubits();
                let (a, b) = (qs[0].index(), qs[1].index());
                let (ea, eb) = (partition.elu_of(a), partition.elu_of(b));
                let (la, lb) = (Qubit(partition.local_of(a)), Qubit(partition.local_of(b)));
                if ea == eb {
                    streams[ea].push(g.map_qubits(|q| if q.index() == a { la } else { lb }));
                } else {
                    // Gate teleportation: alternate comm slots so
                    // back-to-back remote gates can overlap. A slot that
                    // already served a remote gate holds a measured ion;
                    // reset it before replaying the template onto it.
                    let slot = epr_pairs % crate::spec::COMM_SLOTS;
                    let comm = Qubit(partition.comm_position(slot));
                    epr_pairs += 1;
                    for e in [ea, eb] {
                        if std::mem::replace(&mut comm_used[e][slot], true) {
                            streams[e].reset_qubit(comm);
                        }
                    }
                    streams[ea].cnot(la, comm);
                    streams[ea].measure(comm);
                    streams[eb].push(g.map_qubits(|q| if q.index() == a { comm } else { lb }));
                    streams[eb].measure(comm);
                }
            }
            g => {
                let q = match g.qubits().first() {
                    Some(q) => q.index(),
                    None => continue,
                };
                let e = partition.elu_of(q);
                let local = Qubit(partition.local_of(q));
                streams[e].push(g.map_qubits(|_| local));
            }
        }
    }

    let device = spec.validate_policies()?;
    let mut compiler = Compiler::new(device);
    compiler
        .router(spec.router)
        .scheduler(spec.scheduler)
        .initial_mapping(spec.initial_mapping);
    let mut elu_outputs = Vec::with_capacity(n_elus);
    for (e, stream) in streams.iter().enumerate() {
        let out = compiler
            .compile(stream)
            .map_err(|err| ScaleError::EluCompile {
                elu: e,
                reason: err.to_string(),
            })?;
        elu_outputs.push(out);
    }

    Ok(ScaledProgram {
        spec: *spec,
        partition,
        elu_outputs,
        epr_pairs,
    })
}

/// Estimates a compiled ELU array under the given noise and timing
/// models.
///
/// Each ELU is estimated with the ordinary TILT estimator over its own
/// (short) chain — so per-move heating benefits from the `√n` scaling —
/// and every EPR pair multiplies in the photonic-link fidelity.
pub fn estimate_scaled(
    program: &ScaledProgram,
    noise: &NoiseModel,
    times: &GateTimeModel,
) -> ScaleReport {
    let mut ln_success = 0.0f64;
    let mut slowest_elu_us = 0.0f64;
    let mut total_moves = 0usize;
    let mut total_swaps = 0usize;
    for out in &program.elu_outputs {
        let s = estimate_success(&out.program, noise, times);
        ln_success += s.ln_success;
        let t = execution_time_us(&out.program, times, &ExecTimeModel::default());
        slowest_elu_us = slowest_elu_us.max(t);
        total_moves += out.report.move_count;
        total_swaps += out.report.swap_count;
    }
    ln_success += program.epr_pairs as f64 * program.spec.epr.fidelity.ln();
    // Up to COMM_SLOTS pairs generate concurrently (the compiler
    // alternates comm slots for exactly this overlap), so the photonic
    // term serializes only across generation *rounds*.
    let epr_rounds = program.epr_pairs.div_ceil(crate::spec::COMM_SLOTS);
    ScaleReport {
        ln_success,
        success: ln_success.exp(),
        remote_gates: program.epr_pairs,
        exec_time_us: slowest_elu_us + epr_rounds as f64 * program.spec.epr.generation_us,
        total_moves,
        total_swaps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilt_benchmarks::qaoa::qaoa_maxcut;
    use tilt_compiler::DeviceSpec;

    fn models() -> (NoiseModel, GateTimeModel) {
        (NoiseModel::default(), GateTimeModel::default())
    }

    #[test]
    fn local_only_circuit_uses_no_epr() {
        let mut c = Circuit::new(8);
        c.cnot(Qubit(0), Qubit(1)).cnot(Qubit(6), Qubit(7));
        let spec = ScaleSpec::new(10, 4).unwrap(); // capacity 8 → one ELU
        let p = compile_scaled(&c, &spec).unwrap();
        assert_eq!(p.elu_outputs.len(), 1);
        assert_eq!(p.epr_pairs, 0);
    }

    #[test]
    fn boundary_gates_cost_one_epr_each() {
        let mut c = Circuit::new(16);
        c.cnot(Qubit(7), Qubit(8)); // crosses the ELU boundary (cap 8)
        c.cnot(Qubit(0), Qubit(1)); // local
        let spec = ScaleSpec::new(10, 4).unwrap();
        let p = compile_scaled(&c, &spec).unwrap();
        assert_eq!(p.elu_outputs.len(), 2);
        assert_eq!(p.epr_pairs, 1);
        // The remote halves exist in both ELUs.
        assert!(p.elu_outputs[0].program.gate_count() > 0);
        assert!(p.elu_outputs[1].program.gate_count() > 0);
    }

    #[test]
    fn epr_fidelity_multiplies_in() {
        let mut c = Circuit::new(16);
        c.cnot(Qubit(7), Qubit(8));
        let spec = ScaleSpec::new(10, 4).unwrap();
        let p = compile_scaled(&c, &spec).unwrap();
        let (noise, times) = models();
        let with_perfect = {
            let mut perfect = p.clone();
            perfect.spec = perfect.spec.with_epr(crate::EprModel {
                fidelity: 1.0,
                generation_us: 0.0,
            });
            estimate_scaled(&perfect, &noise, &times)
        };
        let with_lossy = estimate_scaled(&p, &noise, &times);
        let ratio = with_lossy.success / with_perfect.success;
        assert!((ratio - 0.95).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn shorter_chains_heat_less_per_move() {
        // The §VII motivation: same workload, modular vs monolithic.
        let circuit = qaoa_maxcut(32, 4, 3);
        let (noise, times) = models();
        // Monolithic 32-ion tape.
        let mono = Compiler::new(DeviceSpec::new(32, 8).unwrap())
            .compile(&circuit)
            .unwrap();
        let mono_s = estimate_success(&mono.program, &noise, &times);
        // Two 18-ion ELUs.
        let spec = ScaleSpec::new(18, 8).unwrap();
        let scaled = compile_scaled(&circuit, &spec).unwrap();
        // Per-move heating in each ELU is lower than on the monolithic
        // tape (k ∝ √n).
        assert!(noise.k_for_chain(18) < noise.k_for_chain(32));
        let report = estimate_scaled(&scaled, &noise, &times);
        assert!(report.success > 0.0);
        assert!(mono_s.success > 0.0);
    }

    #[test]
    fn report_totals_sum_over_elus() {
        let circuit = qaoa_maxcut(32, 2, 5);
        let spec = ScaleSpec::new(10, 4).unwrap();
        let p = compile_scaled(&circuit, &spec).unwrap();
        let (noise, times) = models();
        let r = estimate_scaled(&p, &noise, &times);
        let moves: usize = p.elu_outputs.iter().map(|o| o.report.move_count).sum();
        assert_eq!(r.total_moves, moves);
        assert_eq!(r.remote_gates, p.epr_pairs);
        // EPR generation overlaps up to COMM_SLOTS in flight: the
        // photonic term counts generation *rounds*, not pairs.
        let rounds = p.epr_pairs.div_ceil(crate::spec::COMM_SLOTS);
        let slowest = p
            .elu_outputs
            .iter()
            .map(|o| execution_time_us(&o.program, &times, &ExecTimeModel::default()))
            .fold(0.0f64, f64::max);
        assert!(
            p.epr_pairs > crate::spec::COMM_SLOTS,
            "workload must pipeline"
        );
        assert_eq!(r.exec_time_us, slowest + rounds as f64 * 1000.0);
    }

    #[test]
    fn comm_slot_reuse_resets_the_measured_ion() {
        // Three remote gates on a 2-slot comm budget: the third gate
        // rotates back onto slot 0, whose ion was measured by the first
        // — without a reset the ELU stream replays a CNOT onto a
        // measured ion. Use 4 cross-ELU gates so both slots recycle.
        let mut c = Circuit::new(16);
        for _ in 0..4 {
            c.cnot(Qubit(7), Qubit(8)); // crosses the ELU cut (cap 8)
        }
        let spec = ScaleSpec::new(10, 4).unwrap();
        let p = compile_scaled(&c, &spec).unwrap();
        assert_eq!(p.epr_pairs, 4);
        // The static verifier's `scaled/measured-unreset` rule is the
        // generalization of the hand-rolled walk this test originally
        // carried: a clean compile must produce zero diagnostics.
        assert_eq!(crate::verify::verify_scaled(&p), Vec::new());
        for (e, out) in p.elu_outputs.iter().enumerate() {
            // 4 pairs over 2 slots → each slot reused once per side.
            let resets = out
                .program
                .gates()
                .filter(|(g, _)| matches!(g, Gate::Reset(_)))
                .count();
            assert_eq!(resets, 2, "ELU {e} resets each recycled slot once");
        }
        // And the rule still catches the original bug shape: drop the
        // resets from one ELU's artifacts and the verifier must object.
        let mut broken = p.clone();
        let out = &mut broken.elu_outputs[0];
        let device = *out.program.spec();
        let ops: Vec<tilt_compiler::TiltOp> = out
            .program
            .ops()
            .iter()
            .filter(|op| {
                !matches!(
                    op,
                    tilt_compiler::TiltOp::Gate {
                        gate: Gate::Reset(_),
                        ..
                    }
                )
            })
            .copied()
            .collect();
        out.program = tilt_compiler::TiltProgram::new_unchecked(device, ops);
        let width = out.routed.circuit.n_qubits();
        let routed: Vec<Gate> = out
            .routed
            .circuit
            .iter()
            .filter(|g| !matches!(g, Gate::Reset(_)))
            .copied()
            .collect();
        out.routed.circuit = Circuit::from_gates(width, routed);
        assert!(crate::verify::verify_scaled(&broken)
            .iter()
            .any(|d| d.rule == "scaled/measured-unreset"));
    }

    #[test]
    fn spec_policies_reach_the_elu_compilers() {
        // A non-default scheduler must change the per-ELU programs
        // (ROADMAP engine-coverage item: policies used to be silently
        // dropped in favour of `Compiler::new` defaults).
        let circuit = qaoa_maxcut(32, 2, 5);
        let spec = ScaleSpec::new(10, 4).unwrap();
        let default_p = compile_scaled(&circuit, &spec).unwrap();
        let naive_p = compile_scaled(
            &circuit,
            &spec.with_scheduler(tilt_compiler::SchedulerKind::NaiveNextGate),
        )
        .unwrap();
        let moves = |p: &ScaledProgram| -> usize {
            p.elu_outputs.iter().map(|o| o.report.move_count).sum()
        };
        assert_ne!(
            moves(&default_p),
            moves(&naive_p),
            "scheduler choice must alter the per-ELU schedules"
        );
    }

    #[test]
    fn invalid_policies_are_rejected_before_compiling() {
        let spec = ScaleSpec::new(10, 4)
            .unwrap()
            .with_router(tilt_compiler::RouterKind::Linq(
                tilt_compiler::route::LinqConfig::with_max_swap_len(9),
            ));
        assert!(matches!(
            spec.validate_policies(),
            Err(ScaleError::InvalidSpec { .. })
        ));
        let mut c = Circuit::new(8);
        c.cnot(Qubit(0), Qubit(7));
        assert!(compile_scaled(&c, &spec).is_err());
    }

    #[test]
    fn barriers_fence_every_elu() {
        let mut c = Circuit::new(16);
        c.cnot(Qubit(0), Qubit(1));
        c.barrier();
        c.cnot(Qubit(8), Qubit(9));
        let spec = ScaleSpec::new(10, 4).unwrap();
        let p = compile_scaled(&c, &spec).unwrap();
        assert_eq!(p.elu_outputs.len(), 2);
    }
}
