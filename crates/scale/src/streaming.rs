//! Sharded streaming compilation: one bounded-memory LinQ session per
//! ELU, fed from a single pass over the input gate stream.
//!
//! [`compile_scaled`](crate::compile_scaled) materializes the whole
//! native circuit, the per-ELU gate streams, and every ELU's compiled
//! program before any estimation runs — O(circuit) memory three times
//! over. [`ScaledStreamingCompiler`] replays the exact same
//! decompose→split→teleport-template fold one input gate at a time,
//! dispatching each ELU's share into that ELU's own
//! [`StreamingCompiler`] and folding the emitted ops straight into the
//! streaming estimators. Peak memory is O(window · ELUs) plus the
//! per-ELU scheduler horizons, independent of circuit length, and the
//! per-ELU op streams plus the final [`ScaleReport`] are bit-identical
//! to the monolithic path.
//!
//! Shard compiles fan out across the work-stealing pool: gates buffer
//! into per-ELU inboxes during the split, and each macro-window the pool
//! advances every shard's pipeline concurrently. Emitted increments are
//! drained to the sink **in ELU order** after each fan-out, so the
//! delivery order is deterministic regardless of pool scheduling.

use crate::partition::Partition;
use crate::spec::{ScaleError, ScaleSpec, COMM_SLOTS};
use crate::ScaleReport;
use rayon::prelude::*;
use tilt_circuit::{validate_gate, Circuit, Gate, Qubit};
use tilt_compiler::decompose::decompose_gate;
use tilt_compiler::pipeline::streaming::StreamSummary;
use tilt_compiler::{Compiler, StreamingCompiler, TiltOp};
use tilt_sim::streaming::{ExecTimeAccumulator, SuccessAccumulator};
use tilt_sim::{ExecTimeModel, GateTimeModel, NoiseModel};

/// Receives each ELU's scheduled-op increments as its windows complete.
pub trait ScaledSink {
    /// Delivers one non-empty increment of ELU `elu`'s op stream.
    /// Concatenating every increment for a given ELU reproduces that
    /// ELU's monolithic program exactly.
    fn emit(&mut self, elu: usize, ops: &[TiltOp]);
}

impl<F: FnMut(usize, &[TiltOp])> ScaledSink for F {
    fn emit(&mut self, elu: usize, ops: &[TiltOp]) {
        self(elu, ops);
    }
}

/// What a finished scaled streaming session produced.
#[derive(Clone, Debug)]
pub struct ScaledStreamSummary {
    /// The aggregate estimate — bit-identical to
    /// [`estimate_scaled`](crate::estimate_scaled) over the monolithic
    /// [`ScaledProgram`](crate::ScaledProgram).
    pub report: ScaleReport,
    /// Per-ELU compile summaries, in ELU order.
    pub elu_summaries: Vec<StreamSummary>,
    /// EPR pairs consumed (one per remote two-qubit gate).
    pub epr_pairs: usize,
    /// Non-empty increments delivered to the sink, over all ELUs.
    pub increments: usize,
    /// Program gates consumed from the input stream.
    pub input_gate_count: usize,
}

/// One ELU's slice of the streaming session.
struct Shard {
    /// `None` only transiently inside [`ScaledStreamingCompiler::finish`],
    /// where the pool consumes it.
    compiler: Option<StreamingCompiler>,
    /// Gates split to this ELU since the last fan-out.
    inbox: Vec<Gate>,
    /// Ops emitted by this shard during the current fan-out, awaiting
    /// the ordered drain.
    outbox: Vec<TiltOp>,
    success: SuccessAccumulator,
    /// `None` after [`ScaledStreamingCompiler::finish`] consumes it.
    exec: Option<ExecTimeAccumulator>,
    exec_us: Option<f64>,
    summary: Option<StreamSummary>,
    err: Option<tilt_compiler::CompileError>,
}

impl Shard {
    /// Pushes every inboxed gate through this shard's pipeline, folding
    /// emitted ops into the estimators and the outbox. Runs on a pool
    /// worker.
    fn feed(&mut self) {
        if self.err.is_some() {
            self.inbox.clear();
            return;
        }
        let mut inbox = std::mem::take(&mut self.inbox);
        let compiler = self.compiler.as_mut().expect("shard still live");
        let success = &mut self.success;
        let exec = self.exec.as_mut().expect("shard still live");
        let outbox = &mut self.outbox;
        let mut sink = |ops: &[TiltOp]| {
            for op in ops {
                success.push(op);
                exec.push(op);
            }
            outbox.extend_from_slice(ops);
        };
        for g in inbox.drain(..) {
            if let Err(e) = compiler.push(g, &mut sink) {
                self.err = Some(e);
                break;
            }
        }
        self.inbox = inbox;
    }

    /// [`Shard::feed`] plus the end-of-stream flush; consumes the
    /// pipeline. Runs on a pool worker.
    fn finish(&mut self) {
        self.feed();
        if self.err.is_some() {
            return;
        }
        let compiler = self.compiler.take().expect("finish runs once");
        let success = &mut self.success;
        let mut exec = self.exec.take().expect("finish runs once");
        let outbox = &mut self.outbox;
        let summary = compiler.finish(&mut |ops: &[TiltOp]| {
            for op in ops {
                success.push(op);
                exec.push(op);
            }
            outbox.extend_from_slice(ops);
        });
        self.summary = Some(summary);
        self.exec_us = Some(exec.finish());
    }
}

/// A bounded-memory replacement for
/// [`compile_scaled`](crate::compile_scaled) +
/// [`estimate_scaled`](crate::estimate_scaled): push program gates one
/// at a time, receive per-ELU op increments through a [`ScaledSink`],
/// and collect the aggregate [`ScaleReport`] at the end.
pub struct ScaledStreamingCompiler {
    spec: ScaleSpec,
    partition: Partition,
    n_qubits: usize,
    shards: Vec<Shard>,
    epr_pairs: usize,
    /// Per-ELU usage of each comm slot (see the monolithic splitter: a
    /// recycled slot holds a measured ion and must be reset first).
    comm_used: Vec<[bool; COMM_SLOTS]>,
    /// Scratch for the per-gate native decomposition.
    native: Circuit,
    /// Gates buffered across all inboxes since the last fan-out.
    buffered: usize,
    /// Total buffered gates that trigger a fan-out.
    window: usize,
    increments: usize,
    input_gate_count: usize,
}

impl ScaledStreamingCompiler {
    /// Starts a streaming session for an `n_qubits`-wide input stream on
    /// the ELU array `spec`, fanning a shard advance every `window`
    /// split gates (`usize::MAX` defers all compilation to
    /// [`ScaledStreamingCompiler::finish`]). The per-ELU success/time
    /// estimates fold under `noise` and `times`, exactly as
    /// [`estimate_scaled`](crate::estimate_scaled) would apply them.
    ///
    /// # Errors
    ///
    /// Rejects invalid per-ELU policies, and per-ELU configurations the
    /// streaming pipeline does not support (the `InteractionChain`
    /// initial mapping, which needs the whole circuit).
    pub fn new(
        spec: &ScaleSpec,
        n_qubits: usize,
        window: usize,
        noise: &NoiseModel,
        times: &GateTimeModel,
    ) -> Result<Self, ScaleError> {
        let device = spec.validate_policies()?;
        let partition = Partition::new(spec, n_qubits);
        let n_elus = partition.n_elus();
        let mut compiler = Compiler::new(device);
        compiler
            .router(spec.router)
            .scheduler(spec.scheduler)
            .initial_mapping(spec.initial_mapping);
        let mut shards = Vec::with_capacity(n_elus);
        for e in 0..n_elus {
            let streaming = StreamingCompiler::new(&compiler, spec.ions_per_elu(), window)
                .map_err(|err| ScaleError::EluCompile {
                    elu: e,
                    reason: err.to_string(),
                })?;
            shards.push(Shard {
                compiler: Some(streaming),
                inbox: Vec::new(),
                outbox: Vec::new(),
                success: SuccessAccumulator::new(spec.ions_per_elu(), noise, times),
                // `estimate_scaled` hardcodes the default shuttle model
                // for every ELU; so does the streaming fold.
                exec: Some(ExecTimeAccumulator::new(
                    spec.ions_per_elu(),
                    times,
                    &ExecTimeModel::default(),
                )),
                exec_us: None,
                summary: None,
                err: None,
            });
        }
        Ok(ScaledStreamingCompiler {
            spec: *spec,
            partition,
            n_qubits,
            shards,
            epr_pairs: 0,
            comm_used: vec![[false; COMM_SLOTS]; n_elus],
            native: Circuit::new(n_qubits),
            buffered: 0,
            window: window.max(1),
            increments: 0,
            input_gate_count: 0,
        })
    }

    /// Number of ELUs this session compiles onto.
    pub fn n_elus(&self) -> usize {
        self.shards.len()
    }

    /// Ingests the next program gate, fanning a shard advance when the
    /// macro-window fills.
    ///
    /// # Errors
    ///
    /// Invalid input gates (out-of-range operands, non-finite angles,
    /// reported with their global stream index) and per-ELU compile
    /// failures.
    pub fn push(&mut self, g: Gate, sink: &mut dyn ScaledSink) -> Result<(), ScaleError> {
        validate_gate(&g, self.input_gate_count, self.n_qubits).map_err(|e| {
            ScaleError::InvalidSpec {
                reason: format!("invalid input gate: {e}"),
            }
        })?;
        self.input_gate_count += 1;
        // The monolithic splitter's fold, verbatim, over this gate's
        // native expansion. The scratch circuit is taken out of `self`
        // for the duration so `split` can borrow the shards mutably.
        let mut native = std::mem::replace(&mut self.native, Circuit::new(0));
        native.reset(self.n_qubits);
        decompose_gate(&mut native, &g);
        for gate in native.gates() {
            self.split(gate);
        }
        self.native = native;
        if self.buffered >= self.window {
            self.fan_out(sink)?;
        }
        Ok(())
    }

    /// Routes one native gate to its shard inbox(es) — the same match as
    /// `compile_scaled`'s splitter.
    fn split(&mut self, gate: &Gate) {
        match gate {
            Gate::Barrier => {
                for s in &mut self.shards {
                    s.inbox.push(Gate::Barrier);
                }
                self.buffered += self.shards.len();
            }
            g if g.is_two_qubit() => {
                let qs = g.qubits();
                let (a, b) = (qs[0].index(), qs[1].index());
                let (ea, eb) = (self.partition.elu_of(a), self.partition.elu_of(b));
                let (la, lb) = (
                    Qubit(self.partition.local_of(a)),
                    Qubit(self.partition.local_of(b)),
                );
                if ea == eb {
                    self.shards[ea]
                        .inbox
                        .push(g.map_qubits(|q| if q.index() == a { la } else { lb }));
                    self.buffered += 1;
                } else {
                    let slot = self.epr_pairs % COMM_SLOTS;
                    let comm = Qubit(self.partition.comm_position(slot));
                    self.epr_pairs += 1;
                    for e in [ea, eb] {
                        if std::mem::replace(&mut self.comm_used[e][slot], true) {
                            self.shards[e].inbox.push(Gate::Reset(comm));
                            self.buffered += 1;
                        }
                    }
                    self.shards[ea].inbox.push(Gate::Cnot(la, comm));
                    self.shards[ea].inbox.push(Gate::Measure(comm));
                    self.shards[eb].inbox.push(g.map_qubits(|q| {
                        if q.index() == a {
                            comm
                        } else {
                            lb
                        }
                    }));
                    self.shards[eb].inbox.push(Gate::Measure(comm));
                    self.buffered += 4;
                }
            }
            g => {
                let q = match g.qubits().first() {
                    Some(q) => q.index(),
                    None => return,
                };
                let e = self.partition.elu_of(q);
                let local = Qubit(self.partition.local_of(q));
                self.shards[e].inbox.push(g.map_qubits(|_| local));
                self.buffered += 1;
            }
        }
    }

    /// Advances every shard's pipeline on the pool, then drains emitted
    /// increments to `sink` in ELU order.
    fn fan_out(&mut self, sink: &mut dyn ScaledSink) -> Result<(), ScaleError> {
        self.shards.par_chunks_mut(1).for_each(|chunk| {
            chunk[0].feed();
        });
        self.buffered = 0;
        self.drain(sink)
    }

    /// Ordered outbox drain + first-error check (ELU order, so the
    /// reported error is deterministic regardless of pool scheduling).
    fn drain(&mut self, sink: &mut dyn ScaledSink) -> Result<(), ScaleError> {
        for (e, shard) in self.shards.iter_mut().enumerate() {
            if !shard.outbox.is_empty() {
                sink.emit(e, &shard.outbox);
                self.increments += 1;
                shard.outbox.clear();
            }
            if let Some(err) = &shard.err {
                return Err(ScaleError::EluCompile {
                    elu: e,
                    reason: err.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Flushes every shard to end-of-stream and aggregates the estimate.
    ///
    /// # Errors
    ///
    /// Per-ELU compile failures surfaced by the final flush.
    pub fn finish(mut self, sink: &mut dyn ScaledSink) -> Result<ScaledStreamSummary, ScaleError> {
        self.shards.par_chunks_mut(1).for_each(|chunk| {
            chunk[0].finish();
        });
        self.drain(sink)?;

        // `estimate_scaled`'s aggregation fold, in the same ELU order
        // with the same floating-point operation sequence.
        let mut ln_success = 0.0f64;
        let mut slowest_elu_us = 0.0f64;
        let mut total_moves = 0usize;
        let mut total_swaps = 0usize;
        let mut elu_summaries = Vec::with_capacity(self.shards.len());
        for shard in &mut self.shards {
            let summary = shard.summary.take().expect("finish ran on every shard");
            ln_success += shard.success.finish().ln_success;
            slowest_elu_us = slowest_elu_us.max(shard.exec_us.expect("finish ran"));
            total_moves += summary.report.move_count;
            total_swaps += summary.report.swap_count;
            elu_summaries.push(summary);
        }
        ln_success += self.epr_pairs as f64 * self.spec.epr.fidelity.ln();
        let epr_rounds = self.epr_pairs.div_ceil(COMM_SLOTS);
        Ok(ScaledStreamSummary {
            report: ScaleReport {
                ln_success,
                success: ln_success.exp(),
                remote_gates: self.epr_pairs,
                exec_time_us: slowest_elu_us + epr_rounds as f64 * self.spec.epr.generation_us,
                total_moves,
                total_swaps,
            },
            elu_summaries,
            epr_pairs: self.epr_pairs,
            increments: self.increments,
            input_gate_count: self.input_gate_count,
        })
    }
}

/// One-call streaming compile+estimate over a gate iterator.
///
/// # Errors
///
/// Same failures as [`ScaledStreamingCompiler::push`] /
/// [`ScaledStreamingCompiler::finish`].
pub fn run_scaled_stream<I: IntoIterator<Item = Gate>>(
    spec: &ScaleSpec,
    n_qubits: usize,
    gates: I,
    window: usize,
    noise: &NoiseModel,
    times: &GateTimeModel,
    sink: &mut dyn ScaledSink,
) -> Result<ScaledStreamSummary, ScaleError> {
    let mut session = ScaledStreamingCompiler::new(spec, n_qubits, window, noise, times)?;
    for g in gates {
        session.push(g, sink)?;
    }
    session.finish(sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile_scaled, estimate_scaled};
    use tilt_benchmarks::qaoa::qaoa_maxcut;

    fn collect_streams(
        spec: &ScaleSpec,
        c: &Circuit,
        window: usize,
    ) -> (Vec<Vec<TiltOp>>, ScaledStreamSummary) {
        let n_elus = spec.elus_for(c.n_qubits());
        let mut streams: Vec<Vec<TiltOp>> = vec![Vec::new(); n_elus];
        let mut sink = |elu: usize, ops: &[TiltOp]| streams[elu].extend_from_slice(ops);
        let summary = run_scaled_stream(
            spec,
            c.n_qubits(),
            c.gates().iter().copied(),
            window,
            &NoiseModel::default(),
            &GateTimeModel::default(),
            &mut sink,
        )
        .unwrap();
        (streams, summary)
    }

    #[test]
    fn sharded_stream_matches_monolithic_scaled_compile() {
        let circuit = qaoa_maxcut(32, 2, 5);
        let spec = ScaleSpec::new(10, 4).unwrap();
        let mono = compile_scaled(&circuit, &spec).unwrap();
        let mono_report = estimate_scaled(&mono, &NoiseModel::default(), &GateTimeModel::default());
        for window in [1usize, 64, 1024, usize::MAX] {
            let (streams, summary) = collect_streams(&spec, &circuit, window);
            assert_eq!(streams.len(), mono.elu_outputs.len());
            for (e, out) in mono.elu_outputs.iter().enumerate() {
                assert_eq!(streams[e], out.program.ops(), "ELU {e} window {window}");
                let (sr, mr) = (&summary.elu_summaries[e].report, &out.report);
                assert_eq!(sr.swap_count, mr.swap_count);
                assert_eq!(sr.move_count, mr.move_count);
                assert_eq!(sr.move_distance_ions, mr.move_distance_ions);
                assert_eq!(sr.native_gate_count, mr.native_gate_count);
            }
            assert_eq!(summary.epr_pairs, mono.epr_pairs);
            assert_eq!(summary.report, mono_report, "window {window}");
            assert_eq!(summary.input_gate_count, circuit.len());
            assert!(summary.increments >= 1);
        }
    }

    #[test]
    fn comm_slot_recycling_matches_monolithic() {
        // Four boundary crossings over 2 comm slots: both slots recycle,
        // so the streamed splitter must emit the same resets.
        let mut c = Circuit::new(16);
        for _ in 0..4 {
            c.cnot(Qubit(7), Qubit(8));
        }
        let spec = ScaleSpec::new(10, 4).unwrap();
        let mono = compile_scaled(&c, &spec).unwrap();
        let (streams, summary) = collect_streams(&spec, &c, 3);
        assert_eq!(summary.epr_pairs, 4);
        for (e, out) in mono.elu_outputs.iter().enumerate() {
            assert_eq!(streams[e], out.program.ops(), "ELU {e}");
        }
    }

    #[test]
    fn invalid_input_gate_is_rejected_with_stream_index() {
        let spec = ScaleSpec::new(10, 4).unwrap();
        let mut session = ScaledStreamingCompiler::new(
            &spec,
            16,
            8,
            &NoiseModel::default(),
            &GateTimeModel::default(),
        )
        .unwrap();
        let mut sink = |_: usize, _: &[TiltOp]| {};
        session.push(Gate::H(Qubit(0)), &mut sink).unwrap();
        let err = session.push(Gate::H(Qubit(40)), &mut sink).err().unwrap();
        assert!(err.to_string().contains("invalid input gate"), "{err}");
    }

    #[test]
    fn local_only_stream_uses_no_epr() {
        let mut c = Circuit::new(8);
        c.cnot(Qubit(0), Qubit(1)).cnot(Qubit(6), Qubit(7));
        let spec = ScaleSpec::new(10, 4).unwrap();
        let (_, summary) = collect_streams(&spec, &c, 4);
        assert_eq!(summary.epr_pairs, 0);
        assert_eq!(summary.elu_summaries.len(), 1);
    }
}
