//! # TILT — trapped-ion linear-tape quantum computing, reproduced in Rust
//!
//! This is the umbrella crate of a full reproduction of *TILT: Achieving
//! Higher Fidelity on a Trapped-Ion Linear-Tape Quantum Computing
//! Architecture* (Wu et al., HPCA 2021). It re-exports the workspace
//! crates under stable module names:
//!
//! * [`engine`] — **the front door**: a session-style [`Engine`](engine::Engine)
//!   that owns the device spec, noise/timing models, and compilation
//!   policies once, then compiles + simulates one circuit ([`run`](engine::Engine::run))
//!   or thousands ([`run_batch`](engine::Engine::run_batch)) across any
//!   backend — TILT, the QCCD comparator, or MUSIQC-style ELU arrays.
//! * [`circuit`] — quantum-circuit IR (gates, DAG, layers, QASM).
//! * [`benchmarks`] — the Table II NISQ workload generators.
//! * [`compiler`] — LinQ: decomposition, swap insertion (Algorithm 1),
//!   tape scheduling (Algorithm 2).
//! * [`sim`] — Eq. 3/4/5 noise, success-rate, and timing models.
//! * [`stabilizer`] — bit-packed Clifford tableau simulator for
//!   QEC-scale (hundreds of qubits) stabilizer circuits.
//! * [`statevec`] — dense state-vector simulator (≤ ~24 qubits).
//! * [`qccd`] — the QCCD comparator architecture.
//! * [`scale`] — the modular ELU-array architecture (§VII).
//! * [`report`] — table/CSV helpers used by the experiment harnesses.
//!
//! # Quickstart
//!
//! One engine, any backend. Configure a session once, run circuits
//! through it, read one report shape:
//!
//! ```
//! use tilt::prelude::*;
//!
//! // A 16-qubit GHZ state on a 16-ion tape with an 8-laser head.
//! let mut ghz = Circuit::new(16);
//! ghz.h(Qubit(0));
//! for i in 1..16 {
//!     ghz.cnot(Qubit(i - 1), Qubit(i));
//! }
//! let engine = Engine::builder()
//!     .backend(Backend::Tilt(DeviceSpec::new(16, 8)?))
//!     .build()?;
//! let report = engine.run(&ghz)?;
//! assert!(report.success > 0.5);
//! assert!(report.compile.move_count >= 1);
//!
//! // The same session shape targets the QCCD comparator:
//! let qccd = Engine::builder()
//!     .backend(Backend::Qccd(QccdSpec::for_qubits(16, 5)?))
//!     .build()?;
//! assert!(qccd.run(&ghz)?.success > 0.0);
//! # Ok::<(), tilt::engine::TiltError>(())
//! ```
//!
//! Batches amortize session setup and fan out over the thread pool:
//!
//! ```
//! use tilt::prelude::*;
//!
//! let engine = Engine::builder()
//!     .backend(Backend::Tilt(DeviceSpec::new(8, 4)?))
//!     .build()?;
//! let circuits: Vec<Circuit> = (1..8)
//!     .map(|k| {
//!         let mut c = Circuit::new(8);
//!         c.h(Qubit(0)).cnot(Qubit(0), Qubit(k));
//!         c
//!     })
//!     .collect();
//! let reports = engine.run_batch(circuits);
//! assert!(reports.iter().all(|r| r.is_ok()));
//! # Ok::<(), tilt::engine::TiltError>(())
//! ```
//!
//! Million-gate circuits don't fit that shape — holding the input, the
//! routed circuit, and the compiled program at once is three
//! O(circuit) buffers. [`Engine::run_streaming`](engine::Engine::run_streaming)
//! instead pulls gates from an iterator (or
//! [`run_streaming_qasm`](engine::Engine::run_streaming_qasm) from any
//! reader), compiles them through a windowed pipeline with carry-over
//! router/scheduler state, and hands scheduled-op increments to a sink:
//! peak memory is O(window), and the op stream and estimates are
//! **bit-identical** to the monolithic run at every window size:
//!
//! ```
//! use tilt::benchmarks::stream::qft_stream;
//! use tilt::engine::{NullSink, DEFAULT_STREAM_WINDOW};
//! use tilt::prelude::*;
//!
//! let engine = Engine::builder()
//!     .backend(Backend::Tilt(DeviceSpec::new(16, 8)?))
//!     .build()?;
//! // Gates are generated lazily — no Circuit is ever materialized.
//! let outcome =
//!     engine.run_streaming(16, qft_stream(16), DEFAULT_STREAM_WINDOW, &mut NullSink)?;
//! assert_eq!(outcome.input_gate_count, tilt::benchmarks::qft::qft(16).len());
//! assert!(outcome.success > 0.0);
//! # Ok::<(), tilt::engine::TiltError>(())
//! ```
//!
//! From the command line, `tilt run --stream` does the same over a QASM
//! file — here a million-gate circuit written by the streaming
//! generator example, compiled comfortably inside a 256 MB address
//! space (the monolithic path needs >640 MB on this workload):
//!
//! ```text
//! $ cargo run --release -p tilt-benchmarks --example stream_qasm -- rcs 8 8 11000 11 > big.qasm
//! $ wc -l big.qasm
//! 1012072 big.qasm
//! $ ulimit -v 262144 && tilt run big.qasm --stream --head 16
//! streamed `big.qasm`: 1012064 input gates in 16 increments (window 65536)
//! device: 64 ions, head 16
//! ...
//! ```
//!
//! For service traffic there is no need to link the library at all:
//! `tilt serve` runs a persistent JSON-lines compile service over the
//! same session API — one request per line in (QASM payload plus
//! optional backend/router/noise overrides), one response per line out,
//! in submission order, with windowed backpressure and per-request
//! error isolation:
//!
//! ```text
//! $ printf '%s\n' \
//!     '{"id":1,"qasm":"qreg q[8];\nh q[0];\ncx q[0], q[7];\n"}' \
//!     '{"op":"shutdown"}' | tilt serve --ions 8 --head 4
//! {"id":1,"ok":true,"backend":"tilt","swaps":2,...,"exec_time_us":1007}
//! {"ok":true,"shutdown":true}
//! ```
//!
//! Compilation is **content-addressed**: every result is keyed by
//! `(circuit digest, config fingerprint)` in a shared
//! [`CompileCache`](engine::CompileCache), so repeated circuits are
//! served byte-identically without recompiling. The service caches by
//! default; `--cache-dir` makes the cache survive restarts (snapshot
//! entries are digest-verified on reload):
//!
//! ```text
//! $ tilt serve --ions 64 --head 16 --cache-dir /var/cache/tilt
//! ```
//!
//! See `crates/engine/README.md` for the full wire protocol (stats
//! probes, per-request overrides, `{"op":"configure"}` session
//! rebinding, the TCP listener mode) and the cache key model.
//!
//! Compiled artifacts can be **statically verified** against the
//! machine invariants (head coverage, swap-chain caps, mapping
//! bijection, schedule order, comm-slot hygiene):
//! [`EngineBuilder::verify`](engine::EngineBuilder::verify) attaches
//! [`Diagnostic`](engine::Diagnostic)s to the report (or fails the run
//! under `VerifyLevel::Strict`), and `tilt lint` runs the same rule
//! packs from the command line:
//!
//! ```text
//! $ tilt lint circuit.qasm --ions 16 --head 8
//! lint `circuit.qasm`: clean (41 native ops verified)
//! ```
//!
//! `tilt lint --json` emits the diagnostics as a JSON array and the
//! exit status is nonzero on any error-severity finding;
//! `tilt lint --stream` verifies the window-applicable rules
//! incrementally over the bounded-memory path (`--scaled` does the
//! same per ELU shard on the modular backend). See
//! `crates/compiler/README.md` for the per-backend rule taxonomy.
//!
//! The per-pass building blocks (`Compiler`, `estimate_success`,
//! `compile_qccd`, `compile_scaled`, …) remain available for callers
//! that need a single pass in isolation; see `crates/engine/README.md`
//! for the compatibility policy.

pub use tilt_benchmarks as benchmarks;
pub use tilt_circuit as circuit;
pub use tilt_compiler as compiler;
pub use tilt_engine as engine;
pub use tilt_hash as hash;
pub use tilt_qccd as qccd;
pub use tilt_report as report;
pub use tilt_scale as scale;
pub use tilt_sim as sim;
pub use tilt_stabilizer as stabilizer;
pub use tilt_statevec as statevec;

/// Convenience imports for typical usage.
pub mod prelude {
    pub use tilt_benchmarks::paper_suite;
    pub use tilt_circuit::{Circuit, Gate, Qubit};
    pub use tilt_compiler::{CompileOutput, Compiler, DeviceSpec, RouterKind, SchedulerKind};
    pub use tilt_engine::{
        Backend, BackendKind, CompileCache, Diagnostic, Engine, RunReport, Service, Severity,
        TiltError, VerifyLevel,
    };
    pub use tilt_qccd::{compile_qccd, estimate_qccd_success, QccdParams, QccdSpec};
    pub use tilt_scale::{compile_scaled, estimate_scaled, ScaleSpec};
    pub use tilt_sim::{
        estimate_ideal_success, estimate_success, estimate_success_with_cooling, execution_time_us,
        CoolingPolicy, ExecTimeModel, GateTimeModel, NoiseModel,
    };
}
