//! # TILT — trapped-ion linear-tape quantum computing, reproduced in Rust
//!
//! This is the umbrella crate of a full reproduction of *TILT: Achieving
//! Higher Fidelity on a Trapped-Ion Linear-Tape Quantum Computing
//! Architecture* (Wu et al., HPCA 2021). It re-exports the workspace
//! crates under stable module names:
//!
//! * [`circuit`] — quantum-circuit IR (gates, DAG, layers, QASM).
//! * [`benchmarks`] — the Table II NISQ workload generators.
//! * [`compiler`] — LinQ: decomposition, swap insertion (Algorithm 1),
//!   tape scheduling (Algorithm 2).
//! * [`sim`] — Eq. 3/4/5 noise, success-rate, and timing models.
//! * [`qccd`] — the QCCD comparator architecture.
//! * [`report`] — table/CSV helpers used by the experiment harnesses.
//!
//! # Quickstart
//!
//! ```
//! use tilt::circuit::{Circuit, Qubit};
//! use tilt::compiler::{Compiler, DeviceSpec};
//! use tilt::sim::{estimate_success, GateTimeModel, NoiseModel};
//!
//! // A 16-qubit GHZ state on a 16-ion tape with an 8-laser head.
//! let mut ghz = Circuit::new(16);
//! ghz.h(Qubit(0));
//! for i in 1..16 {
//!     ghz.cnot(Qubit(i - 1), Qubit(i));
//! }
//! let out = Compiler::new(DeviceSpec::new(16, 8)?).compile(&ghz)?;
//! let success = estimate_success(&out.program, &NoiseModel::default(), &GateTimeModel::default());
//! assert!(success.success > 0.5);
//! # Ok::<(), tilt::compiler::CompileError>(())
//! ```

pub use tilt_benchmarks as benchmarks;
pub use tilt_circuit as circuit;
pub use tilt_compiler as compiler;
pub use tilt_qccd as qccd;
pub use tilt_report as report;
pub use tilt_scale as scale;
pub use tilt_sim as sim;
pub use tilt_statevec as statevec;

/// Convenience imports for typical usage.
pub mod prelude {
    pub use tilt_benchmarks::paper_suite;
    pub use tilt_circuit::{Circuit, Gate, Qubit};
    pub use tilt_compiler::{CompileOutput, Compiler, DeviceSpec, RouterKind, SchedulerKind};
    pub use tilt_qccd::{compile_qccd, estimate_qccd_success, QccdParams, QccdSpec};
    pub use tilt_scale::{compile_scaled, estimate_scaled, ScaleSpec};
    pub use tilt_sim::{
        estimate_ideal_success, estimate_success, estimate_success_with_cooling, execution_time_us,
        CoolingPolicy, ExecTimeModel, GateTimeModel, NoiseModel,
    };
}
