//! Quickstart: compile a GHZ-state circuit for a small TILT machine and
//! estimate its success rate and execution time.
//!
//! Run with: `cargo run --release --example quickstart`

use tilt::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 24-qubit GHZ state: one Hadamard, then a CNOT ladder.
    let n = 24;
    let mut ghz = Circuit::new(n);
    ghz.h(Qubit(0));
    for i in 1..n {
        ghz.cnot(Qubit(i - 1), Qubit(i));
    }
    println!("program: {}", ghz.stats());

    // A TILT machine with a 24-ion tape and an 8-laser head.
    let spec = DeviceSpec::new(n, 8)?;
    let out = Compiler::new(spec).compile(&ghz)?;
    let r = &out.report;
    println!(
        "compiled: {} native gates, {} swaps, {} tape moves ({} ion spacings travelled)",
        r.native_gate_count, r.swap_count, r.move_count, r.move_distance_ions
    );

    // Simulate under the paper's noise model (Eq. 3–5).
    let noise = NoiseModel::default();
    let times = GateTimeModel::default();
    let success = estimate_success(&out.program, &noise, &times);
    let t_us = execution_time_us(&out.program, &times, &ExecTimeModel::default());
    println!(
        "estimated success rate: {:.4} ({} two-qubit gates, {:.1} quanta of heat)",
        success.success, success.two_qubit_gates, success.final_quanta
    );
    println!("estimated execution time: {:.2} ms", t_us / 1e3);

    // Compare against the connectivity-unconstrained ideal device.
    let ideal = estimate_ideal_success(&ghz, &noise, &times);
    println!(
        "ideal trapped-ion reference: {:.4} (TILT reaches {:.1}% of ideal)",
        ideal.success,
        100.0 * success.success / ideal.success
    );
    Ok(())
}
