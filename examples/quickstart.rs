//! Quickstart: compile a GHZ-state circuit for a small TILT machine and
//! estimate its success rate and execution time — all through the
//! `Engine` session API.
//!
//! Run with: `cargo run --release --example quickstart`

use tilt::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 24-qubit GHZ state: one Hadamard, then a CNOT ladder.
    let n = 24;
    let mut ghz = Circuit::new(n);
    ghz.h(Qubit(0));
    for i in 1..n {
        ghz.cnot(Qubit(i - 1), Qubit(i));
    }
    println!("program: {}", ghz.stats());

    // One session: a TILT machine with a 24-ion tape and an 8-laser
    // head, under the paper's default noise and timing models.
    let engine = Engine::builder()
        .backend(Backend::Tilt(DeviceSpec::new(n, 8)?))
        .build()?;

    // One call: compile + simulate, one unified report.
    let report = engine.run(&ghz)?;
    let c = &report.compile;
    println!(
        "compiled: {} native gates, {} swaps, {} tape moves ({} ion spacings travelled)",
        c.native_gate_count, c.swap_count, c.move_count, c.move_distance
    );
    let success = report.tilt_success().expect("TILT backend");
    println!(
        "estimated success rate: {:.4} ({} two-qubit gates, {:.1} quanta of heat)",
        report.success, success.report.two_qubit_gates, success.report.final_quanta
    );
    println!(
        "estimated execution time: {:.2} ms",
        report.exec_time_us / 1e3
    );

    // Compare against the connectivity-unconstrained ideal device.
    let ideal = estimate_ideal_success(&ghz, engine.noise(), engine.gate_times());
    println!(
        "ideal trapped-ion reference: {:.4} (TILT reaches {:.1}% of ideal)",
        ideal.success,
        100.0 * report.success / ideal.success
    );
    Ok(())
}
