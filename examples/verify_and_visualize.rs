//! Verify a compiled program semantically and draw its tape trajectory.
//!
//! This example shows the two introspection tools that go beyond the
//! paper: the state-vector verifier (is the scheduled program the same
//! unitary as the source program?) and the tape-head timeline (where did
//! the execution zone travel?). The `Engine` report keeps the full
//! compile artifacts in `RunDetail`, so drill-down consumers like these
//! need nothing beyond the session API.
//!
//! Run with: `cargo run --release --example verify_and_visualize`

use tilt::compiler::{decompose::decompose, viz};
use tilt::prelude::*;
use tilt::statevec::State;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 10-qubit program mixing local and long-distance interactions.
    let n = 10;
    let mut circuit = Circuit::new(n);
    circuit.h(Qubit(0));
    circuit.cnot(Qubit(0), Qubit(9));
    circuit.zz(Qubit(4), Qubit(5), 0.7);
    circuit.cphase(Qubit(9), Qubit(1), 1.1);
    circuit.cnot(Qubit(2), Qubit(3));

    let engine = Engine::builder()
        .backend(Backend::Tilt(DeviceSpec::new(n, 4)?))
        .build()?;
    let report = engine.run(&circuit)?;
    println!(
        "compiled: {} swaps, {} moves\n",
        report.compile.swap_count, report.compile.move_count
    );
    let out = report.tilt_output().expect("TILT backend");

    // --- semantic verification -----------------------------------------
    // Simulate the logical program and the scheduled machine program, then
    // compare after undoing the routing permutation.
    let logical = State::zero(n).run(&decompose(&circuit));
    let mut physical = State::zero(n);
    for (gate, _pos) in out.program.gates() {
        physical.apply(gate);
    }
    let perm: Vec<usize> = out.routed.final_mapping.log_to_phys().to_vec();
    let fidelity = logical.permute_qubits(&perm).fidelity(&physical);
    println!("state-vector check: |<logical|physical>|^2 = {fidelity:.12}");
    assert!((fidelity - 1.0).abs() < 1e-9);
    println!("the scheduled program implements the source unitary exactly.\n");

    // --- tape trajectory -------------------------------------------------
    println!("{}", viz::render_timeline(&out.program));
    Ok(())
}
