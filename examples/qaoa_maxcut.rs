//! Domain scenario: compiling a QAOA MaxCut ansatz — the hybrid
//! quantum-classical workload the paper's introduction motivates — onto
//! TILT machines with different head sizes.
//!
//! QAOA's nearest-neighbour structure is TILT's best case: the whole
//! interaction layer slides under the head with a handful of tape moves
//! and zero swaps (§VI-B of the paper). Each head size is one `Engine`
//! session; the circuit runs through all of them.
//!
//! Run with: `cargo run --release --example qaoa_maxcut`

use tilt::benchmarks::qaoa::qaoa_maxcut;
use tilt::prelude::*;
use tilt::report::{fmt_success, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 64;
    let layers = 20;
    let circuit = qaoa_maxcut(n, layers, 7);
    println!(
        "QAOA MaxCut ansatz: {} qubits × {} layers = {} ZZ couplings\n",
        n,
        layers,
        circuit.two_qubit_count()
    );

    let mut table = Table::new(["head size", "swaps", "moves", "success", "exec time (s)"]);
    for head in [8, 16, 32, 64] {
        let engine = Engine::builder()
            .backend(Backend::Tilt(DeviceSpec::new(n, head)?))
            .build()?;
        let report = engine.run(&circuit)?;
        table.row([
            head.to_string(),
            report.compile.swap_count.to_string(),
            report.compile.move_count.to_string(),
            fmt_success(report.success),
            format!("{:.3}", report.exec_time_us / 1e6),
        ]);
    }
    println!("{}", table.render());

    let ideal = estimate_ideal_success(&circuit, &NoiseModel::default(), &GateTimeModel::default());
    println!(
        "ideal trapped-ion reference: {} — a 32-laser head gets most of the way there",
        fmt_success(ideal.success)
    );
    Ok(())
}
