//! Domain scenario: tuning `MaxSwapLen` — the paper's Fig. 7 experiment.
//!
//! Restricting the span of inserted SWAP gates below the head size trades
//! a few extra swaps for scheduling freedom: a swap of span `L-1` executes
//! at exactly one head position (Fig. 5), so shorter swaps let the tape
//! scheduler batch more gates per move. The sweet spot is
//! application-dependent; one `Engine` session per candidate value reruns
//! LinQ with that router configuration.
//!
//! Run with: `cargo run --release --example maxswaplen_tuning`

use tilt::benchmarks::sqrt::grover_sqrt;
use tilt::compiler::route::LinqConfig;
use tilt::prelude::*;
use tilt::report::{fmt_success, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-sized Grover instance (the paper sweeps the 78-qubit SQRT;
    // `cargo run -p bench --bin fig7` reproduces that exactly).
    let circuit = grover_sqrt(16, 225, 1);
    let head = 8;
    let spec = DeviceSpec::new(circuit.n_qubits(), head)?;
    println!(
        "Grover SQRT: {} qubits, {} two-qubit gates, head size {head}\n",
        circuit.n_qubits(),
        circuit.two_qubit_count()
    );

    let mut table = Table::new(["MaxSwapLen", "swaps", "moves", "success"]);
    let mut best: Option<(usize, f64)> = None;

    for max_swap_len in (3..=head - 1).rev() {
        let engine = Engine::builder()
            .backend(Backend::Tilt(spec))
            .router(RouterKind::Linq(LinqConfig::with_max_swap_len(
                max_swap_len,
            )))
            .build()?;
        let report = engine.run(&circuit)?;
        table.row([
            max_swap_len.to_string(),
            report.compile.swap_count.to_string(),
            report.compile.move_count.to_string(),
            fmt_success(report.success),
        ]);
        if best.is_none_or(|(_, b)| report.success > b) {
            best = Some((max_swap_len, report.success));
        }
    }
    println!("{}", table.render());

    let (len, success) = best.expect("at least one configuration ran");
    println!(
        "best MaxSwapLen for this application: {len} (success {})",
        fmt_success(success)
    );
    Ok(())
}
