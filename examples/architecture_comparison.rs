//! Domain scenario: the paper's headline experiment in miniature — TILT
//! vs QCCD vs the ideal trapped-ion device on benchmarks with opposite
//! communication patterns (Fig. 8 of the paper).
//!
//! This is the experiment the unified session API exists for: the same
//! circuit runs through `Engine` sessions that differ **only in their
//! backend**, and every architecture answers with the same report shape.
//!
//! Run with: `cargo run --release --example architecture_comparison`

use tilt::benchmarks::{qaoa::qaoa_maxcut, qft::qft};
use tilt::prelude::*;
use tilt::report::{fmt_success, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workloads: Vec<(&str, tilt::circuit::Circuit)> = vec![
        ("QAOA (nearest-neighbour)", qaoa_maxcut(64, 20, 7)),
        ("QFT (long-distance)", qft(64)),
    ];

    let mut table = Table::new([
        "workload",
        "TILT head 16",
        "TILT head 32",
        "QCCD",
        "Ideal TI",
    ]);

    for (name, circuit) in workloads {
        let mut cells = vec![name.to_string()];

        // TILT at both paper head sizes: one session per machine.
        for head in [16, 32] {
            let engine = Engine::builder()
                .backend(Backend::Tilt(DeviceSpec::new(circuit.n_qubits(), head)?))
                .build()?;
            cells.push(fmt_success(engine.run(&circuit)?.success));
        }

        // QCCD: best trap size in the paper's 15–35 range — the same
        // circuit through sessions that differ only in their backend.
        let qccd_best = [15usize, 17, 20, 25, 30, 35]
            .iter()
            .map(|&ions| {
                let spec = QccdSpec::for_qubits(circuit.n_qubits(), ions)
                    .expect("paper trap sizes are valid");
                Engine::builder()
                    .backend(Backend::Qccd(spec))
                    .build()
                    .expect("valid spec builds")
                    .run(&circuit)
                    .expect("benchmark fits the array")
                    .success
            })
            .fold(0.0f64, f64::max);
        cells.push(fmt_success(qccd_best));

        // Ideal fully-connected trapped-ion device.
        let ideal =
            estimate_ideal_success(&circuit, &NoiseModel::default(), &GateTimeModel::default());
        cells.push(fmt_success(ideal.success));

        table.row(cells);
    }

    println!("{}", table.render());
    println!("TILT wins where communication fits the head (QAOA); QCCD wins on");
    println!("all-to-all traffic (QFT) where TILT pays hundreds of heating tape moves.");
    Ok(())
}
