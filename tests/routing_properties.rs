//! Property-based tests on the router and scheduler: for arbitrary
//! circuits and device shapes, routing must preserve program semantics
//! and scheduling must respect coverage and dependencies.

use proptest::prelude::*;
use tilt::prelude::*;

/// A random native-granularity circuit description: qubit count plus a
/// list of abstract gate specs.
#[derive(Clone, Debug)]
enum GateSpec {
    One(usize),
    Two(usize, usize),
}

fn circuit_strategy() -> impl Strategy<Value = (usize, Vec<GateSpec>)> {
    (4usize..14).prop_flat_map(|n| {
        let gate = prop_oneof![
            (0..n).prop_map(GateSpec::One),
            (0..n, 0..n)
                .prop_filter("distinct operands", |(a, b)| a != b)
                .prop_map(|(a, b)| GateSpec::Two(a, b)),
        ];
        (Just(n), prop::collection::vec(gate, 0..40))
    })
}

fn build(n: usize, specs: &[GateSpec]) -> Circuit {
    let mut c = Circuit::new(n);
    for (i, s) in specs.iter().enumerate() {
        match *s {
            GateSpec::One(q) => {
                c.rx(Qubit(q), 0.1 + i as f64 * 0.01);
            }
            GateSpec::Two(a, b) => {
                c.xx(Qubit(a), Qubit(b), 0.1 + i as f64 * 0.01);
            }
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Both routers leave every two-qubit gate executable under the head.
    #[test]
    fn routed_gates_always_fit((n, specs) in circuit_strategy(), head_frac in 2usize..6) {
        let head = (n / 2).max(2).min(head_frac + 2);
        let circuit = build(n, &specs);
        let spec = DeviceSpec::new(n, head).unwrap();
        for router in [
            RouterKind::default(),
            RouterKind::Stochastic(Default::default()),
        ] {
            let mut compiler = Compiler::new(spec);
            compiler.router(router);
            let out = compiler.compile(&circuit).unwrap();
            for g in &out.routed.circuit {
                if let Some(d) = g.span() {
                    prop_assert!(d < head, "span {d} >= head {head}");
                }
            }
        }
    }

    /// Replaying the routed circuit's swaps recovers the logical program:
    /// same two-qubit interactions, same order, same angles.
    #[test]
    fn routing_preserves_program_semantics((n, specs) in circuit_strategy()) {
        let circuit = build(n, &specs);
        let head = (n / 2).max(2);
        let spec = DeviceSpec::new(n, head).unwrap();
        let out = Compiler::new(spec).compile(&circuit).unwrap();

        let mut mapping = out.routed.initial_mapping.clone();
        let mut replayed: Vec<(Qubit, Qubit, u64)> = Vec::new();
        for g in &out.routed.circuit {
            match *g {
                Gate::Swap(a, b) => mapping.swap_positions(a.index(), b.index()),
                Gate::Xx(a, b, t) => {
                    let la = mapping.logical_at(a.index());
                    let lb = mapping.logical_at(b.index());
                    replayed.push((la.min(lb), la.max(lb), t.to_bits()));
                }
                _ => {}
            }
        }
        let expected: Vec<(Qubit, Qubit, u64)> = circuit
            .iter()
            .filter_map(|g| match *g {
                Gate::Xx(a, b, t) => Some((a.min(b), a.max(b), t.to_bits())),
                _ => None,
            })
            .collect();
        prop_assert_eq!(replayed, expected);
        prop_assert_eq!(&mapping, &out.routed.final_mapping);
    }

    /// The scheduler emits every native gate exactly once and covers every
    /// operand with the head.
    #[test]
    fn scheduler_covers_everything((n, specs) in circuit_strategy(), use_naive in any::<bool>()) {
        let circuit = build(n, &specs);
        let head = (n / 2).max(2);
        let spec = DeviceSpec::new(n, head).unwrap();
        let mut compiler = Compiler::new(spec);
        if use_naive {
            compiler.scheduler(SchedulerKind::NaiveNextGate);
        }
        let out = compiler.compile(&circuit).unwrap();
        let lowered = tilt::compiler::decompose::decompose(&out.routed.circuit);
        prop_assert_eq!(out.program.gate_count(), lowered.len());
        for (gate, pos) in out.program.gates() {
            for q in gate.qubits() {
                prop_assert!(spec.covers(pos, q.index()));
            }
        }
    }

    /// Per-qubit gate order in the scheduled program matches the routed
    /// circuit (dependencies are never reordered).
    #[test]
    fn scheduler_respects_per_qubit_order((n, specs) in circuit_strategy()) {
        let circuit = build(n, &specs);
        let head = (n / 2).max(2);
        let spec = DeviceSpec::new(n, head).unwrap();
        let out = Compiler::new(spec).compile(&circuit).unwrap();
        let lowered = tilt::compiler::decompose::decompose(&out.routed.circuit);

        // Expected per-qubit sequences from program order.
        let mut expected: Vec<Vec<Gate>> = vec![Vec::new(); n];
        for g in &lowered {
            for q in g.qubits() {
                expected[q.index()].push(*g);
            }
        }
        let mut actual: Vec<Vec<Gate>> = vec![Vec::new(); n];
        for (g, _) in out.program.gates() {
            for q in g.qubits() {
                actual[q.index()].push(*g);
            }
        }
        prop_assert_eq!(expected, actual);
    }

    /// Swap count monotonicity: an all-covering head needs zero swaps.
    #[test]
    fn full_head_needs_no_swaps((n, specs) in circuit_strategy()) {
        let circuit = build(n, &specs);
        let spec = DeviceSpec::new(n, n).unwrap();
        let out = Compiler::new(spec).compile(&circuit).unwrap();
        prop_assert_eq!(out.report.swap_count, 0);
        prop_assert_eq!(out.report.move_count, 0);
    }
}
