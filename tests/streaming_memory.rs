//! Enforced-rlimit proof that the streaming pipeline's peak memory is
//! O(window + horizon), not O(circuit): a child process compiles a deep
//! RCS workload under a `ulimit -v` address-space ceiling that the
//! monolithic path demonstrably exceeds. The ceiling is real — the
//! monolithic control child aborts on allocation failure under the same
//! limit — so a regression that buffers the stream cannot pass.
//!
//! Mechanics: each test re-execs the test binary through
//! `sh -c 'ulimit -v <KB>; exec <self> child_compile_under_rlimit ...'`
//! with the workload passed via environment variables. The `#[ignore]`d
//! child entry no-ops when the variables are absent, so a stray
//! `cargo test -- --ignored` run stays green.
//!
//! Calibration (debug profile, 8×8 RCS, window 65 536): at 2 000 cycles
//! (~184k gates, ~640k lowered ops) streaming completes under 96 MB
//! while the monolithic path aborts under 192 MB; at 11 000 cycles
//! (~1.01M gates) streaming completes under 96 MB while the monolithic
//! path aborts under 640 MB. The ceilings below sit between the two
//! floors with at least ~1.4× margin on each side.

use std::process::{Command, Output};
use tilt::benchmarks::stream::rcs_stream;
use tilt::compiler::TiltOp;
use tilt::engine::{Backend, Engine, DEFAULT_STREAM_WINDOW};
use tilt::prelude::*;

const MODE_VAR: &str = "TILT_MEM_CHILD_MODE";
const CYCLES_VAR: &str = "TILT_MEM_CHILD_CYCLES";
const ROWS: usize = 8;
const COLS: usize = 8;
const SEED: u64 = 11;

/// Re-runs this test binary's `child_compile_under_rlimit` under an
/// address-space ceiling of `limit_kb` kilobytes.
fn spawn_child(mode: &str, cycles: usize, limit_kb: usize) -> Output {
    let exe = std::env::current_exe().expect("test binary path");
    Command::new("sh")
        .arg("-c")
        .arg(format!(
            "ulimit -v {limit_kb} && \
             exec \"$1\" child_compile_under_rlimit --exact --ignored --nocapture"
        ))
        .arg("sh")
        .arg(&exe)
        .env(MODE_VAR, mode)
        .env(CYCLES_VAR, cycles.to_string())
        .output()
        .expect("spawn rlimited child")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Asserts the streaming child completed under `limit_kb` and actually
/// streamed (several increments, full gate count), and that the
/// monolithic child aborted under the same ceiling.
fn assert_separation(cycles: usize, limit_kb: usize, expect_gates: usize) {
    let stream = spawn_child("stream", cycles, limit_kb);
    let stream_out = stdout_of(&stream);
    assert!(
        stream.status.success(),
        "streaming compile must fit in {limit_kb} KB:\n{stream_out}\n{}",
        String::from_utf8_lossy(&stream.stderr)
    );
    // libtest prints `test <name> ... ` without a newline before the
    // child's own output, so the sentinel is mid-line.
    let line = stream_out
        .lines()
        .find_map(|l| l.find("CHILD_STREAM_OK").map(|i| &l[i..]))
        .unwrap_or_else(|| panic!("streaming child prints its sentinel:\n{stream_out}"));
    let field = |key: &str| -> usize {
        line.split_whitespace()
            .find_map(|w| w.strip_prefix(key))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("`{key}<n>` in `{line}`"))
    };
    assert_eq!(field("gates="), expect_gates);
    assert!(
        field("increments=") >= 2,
        "a super-horizon workload must emit multiple increments: {line}"
    );

    let mono = spawn_child("mono", cycles, limit_kb);
    let mono_out = stdout_of(&mono);
    assert!(
        !mono.status.success(),
        "the ceiling is only meaningful if the monolithic path exceeds it, \
         but it survived {limit_kb} KB:\n{mono_out}"
    );
    assert!(
        !mono_out.contains("CHILD_MONO_OK"),
        "monolithic child must have died before finishing:\n{mono_out}"
    );
}

/// In-suite proof: ~184k input gates (≈640k lowered ops, several
/// scheduler-horizon flushes) under a 144 MB ceiling. Streaming's
/// measured floor is ≤96 MB (and it runs without allocator pressure at
/// 144 MB); the monolithic path needs >192 MB and aborts within a
/// second.
#[test]
fn streaming_fits_under_a_ceiling_the_monolithic_compile_exceeds() {
    let cycles = 2_000;
    let expect_gates = Circuit::from_gates(ROWS * COLS, rcs_stream(ROWS, COLS, cycles, SEED)).len();
    assert_separation(cycles, 144 * 1024, expect_gates);
}

/// The ISSUE's headline acceptance bar: a ≥1M-gate circuit compiles
/// under an enforced rlimit the monolithic path exceeds. Slower (~30 s
/// debug), so `#[ignore]`d for on-demand / CI runs:
/// `cargo test --test streaming_memory -- --ignored --exact million_gate_circuit_compiles_under_an_enforced_rlimit`
#[test]
#[ignore = "million-gate workload; run explicitly or in CI"]
fn million_gate_circuit_compiles_under_an_enforced_rlimit() {
    // rcs_stream(8, 8, 11_000, 11) = 1_012_064 gates (counted once by
    // the streaming child itself; materializing it here to count would
    // defeat the point).
    let cycles = 11_000;
    let stream = spawn_child("stream", cycles, 256 * 1024);
    let out = stdout_of(&stream);
    assert!(
        stream.status.success(),
        "1M-gate streaming compile must fit in 256 MB:\n{out}\n{}",
        String::from_utf8_lossy(&stream.stderr)
    );
    let line = out
        .lines()
        .find_map(|l| l.find("CHILD_STREAM_OK").map(|i| &l[i..]))
        .expect("sentinel");
    assert!(line.contains("gates=1012064"), "{line}");

    let mono = spawn_child("mono", cycles, 256 * 1024);
    assert!(
        !mono.status.success(),
        "monolithic 1M-gate compile needs >640 MB; it cannot fit in 256 MB"
    );
}

/// Child entry point, driven by [`spawn_child`] via env vars. Compiles
/// the 8×8 RCS workload on the TILT backend and prints a sentinel line
/// the parent greps. No-ops (passes) when run without the env vars.
#[test]
#[ignore = "re-exec child of the rlimit tests; driven via env vars"]
fn child_compile_under_rlimit() {
    let Ok(mode) = std::env::var(MODE_VAR) else {
        return;
    };
    let cycles: usize = std::env::var(CYCLES_VAR)
        .expect("cycles env var")
        .parse()
        .expect("numeric cycles");
    let n = ROWS * COLS;
    let spec = DeviceSpec::new(n, 16).unwrap();
    let engine = Engine::builder()
        .backend(Backend::Tilt(spec))
        .build()
        .unwrap();
    match mode.as_str() {
        "stream" => {
            let mut sink = |_shard: usize, _ops: &[TiltOp]| {};
            let outcome = engine
                .run_streaming(
                    n,
                    rcs_stream(ROWS, COLS, cycles, SEED),
                    DEFAULT_STREAM_WINDOW,
                    &mut sink,
                )
                .unwrap();
            println!(
                "CHILD_STREAM_OK increments={} gates={}",
                outcome.increments, outcome.input_gate_count
            );
        }
        "mono" => {
            let circuit = Circuit::from_gates(n, rcs_stream(ROWS, COLS, cycles, SEED));
            let report = engine.run(&circuit).unwrap();
            println!(
                "CHILD_MONO_OK ops={}",
                report.tilt_program().unwrap().ops().len()
            );
        }
        other => panic!("unknown child mode `{other}`"),
    }
}
