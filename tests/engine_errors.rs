//! Error-path coverage for the session API: every backend's invalid
//! specs and misfit circuits must surface as the right [`TiltError`]
//! variant, with messages that keep the numbers a user needs.

use tilt::circuit::Circuit;
use tilt::compiler::CompileError;
use tilt::engine::{Backend, Engine, TiltError};
use tilt::prelude::*;
use tilt::qccd::QccdError;
use tilt::scale::ScaleError;

/// Builds a TILT engine through `?`, as a downstream client would.
fn tilt_engine(n_ions: usize, head: usize) -> Result<Engine, TiltError> {
    Engine::builder()
        .backend(Backend::Tilt(DeviceSpec::new(n_ions, head)?))
        .build()
}

#[test]
fn tilt_head_wider_than_tape_is_invalid_spec() {
    let err = tilt_engine(8, 12).unwrap_err();
    assert!(matches!(
        err,
        TiltError::Compile(CompileError::InvalidSpec {
            n_ions: 8,
            head_size: 12
        })
    ));
    let msg = err.to_string();
    assert!(msg.contains('8') && msg.contains("12"), "{msg}");
}

#[test]
fn tilt_zero_ion_tape_is_invalid_spec() {
    let err = tilt_engine(0, 0).unwrap_err();
    assert!(matches!(
        err,
        TiltError::Compile(CompileError::InvalidSpec { .. })
    ));
}

#[test]
fn tilt_circuit_wider_than_tape_is_reported_with_numbers() {
    let engine = tilt_engine(64, 16).unwrap();
    let err = engine.run(&Circuit::new(80)).unwrap_err();
    assert!(matches!(
        err,
        TiltError::Compile(CompileError::CircuitTooWide {
            circuit_qubits: 80,
            n_ions: 64
        })
    ));
    let msg = err.to_string();
    assert!(msg.contains("80") && msg.contains("64"), "{msg}");
}

#[test]
fn qccd_zero_traps_is_invalid_spec() {
    let err: TiltError = QccdSpec::new(0, 6).unwrap_err().into();
    assert!(matches!(
        err,
        TiltError::Qccd(QccdError::InvalidSpec { .. })
    ));
    assert!(err.to_string().contains("at least one trap"), "{err}");
}

#[test]
fn qccd_zero_ions_per_trap_is_invalid_spec() {
    let err: TiltError = QccdSpec::for_qubits(16, 0).unwrap_err().into();
    assert!(matches!(
        err,
        TiltError::Qccd(QccdError::InvalidSpec { .. })
    ));
}

#[test]
fn qccd_circuit_wider_than_array_is_reported_with_numbers() {
    let spec = QccdSpec::for_qubits(16, 4).unwrap();
    let engine = Engine::qccd(spec);
    let err = engine.run(&Circuit::new(40)).unwrap_err();
    assert!(matches!(
        err,
        TiltError::Qccd(QccdError::CircuitTooWide {
            circuit_qubits: 40,
            ..
        })
    ));
    assert!(err.to_string().contains("40"), "{err}");
}

#[test]
fn scaled_degenerate_elu_is_invalid_spec() {
    // Too small to hold data ions beside the comm slots.
    let err: TiltError = ScaleSpec::new(3, 2).unwrap_err().into();
    assert!(matches!(
        err,
        TiltError::Scale(ScaleError::InvalidSpec { .. })
    ));
    // Head wider than the ELU.
    let err: TiltError = ScaleSpec::new(18, 19).unwrap_err().into();
    assert!(matches!(
        err,
        TiltError::Scale(ScaleError::InvalidSpec { .. })
    ));
}

#[test]
fn scaled_per_elu_failure_names_the_elu() {
    let mut bad = Circuit::new(16);
    bad.rz(Qubit(0), f64::NAN);
    let engine = Engine::scaled(ScaleSpec::new(10, 4).unwrap());
    let err = engine.run(&bad).unwrap_err();
    assert!(matches!(
        err,
        TiltError::Scale(ScaleError::EluCompile { elu: 0, .. })
    ));
    assert!(err.to_string().contains("ELU 0"), "{err}");
}

#[test]
fn tilt_invalid_circuit_is_surfaced() {
    let mut bad = Circuit::new(4);
    bad.rz(Qubit(0), f64::NAN);
    let engine = tilt_engine(4, 4).unwrap();
    let err = engine.run(&bad).unwrap_err();
    assert!(matches!(
        err,
        TiltError::Compile(CompileError::InvalidCircuit(_))
    ));
}

#[test]
fn missing_backend_is_a_config_error() {
    let err = Engine::builder().build().unwrap_err();
    assert!(matches!(err, TiltError::Config { .. }));
    assert!(err.to_string().contains("no backend"), "{err}");
}

#[test]
fn inconsistent_router_fails_at_build_not_run() {
    use tilt::compiler::route::LinqConfig;
    // max_swap_len ≥ head is rejected when the session is built, so a
    // batch never discovers it per circuit.
    let err = Engine::builder()
        .backend(Backend::Tilt(DeviceSpec::new(16, 4).unwrap()))
        .router(RouterKind::Linq(LinqConfig::with_max_swap_len(4)))
        .build()
        .unwrap_err();
    assert!(matches!(
        err,
        TiltError::Compile(CompileError::InvalidRouterConfig { .. })
    ));
}

#[test]
fn batch_reports_each_failure_individually() {
    let engine = tilt_engine(8, 4).unwrap();
    let mut ok = Circuit::new(8);
    ok.h(Qubit(0)).cnot(Qubit(0), Qubit(7));
    let mut invalid = Circuit::new(8);
    invalid.rz(Qubit(0), f64::INFINITY);
    let reports = engine.run_batch(vec![ok.clone(), Circuit::new(9), invalid, ok]);
    assert!(reports[0].is_ok());
    assert!(matches!(
        reports[1],
        Err(TiltError::Compile(CompileError::CircuitTooWide { .. }))
    ));
    assert!(matches!(
        reports[2],
        Err(TiltError::Compile(CompileError::InvalidCircuit(_)))
    ));
    assert!(reports[3].is_ok());
}

#[test]
fn source_chain_reaches_the_backend_error() {
    use std::error::Error as _;
    let err = tilt_engine(4, 9).unwrap_err();
    let source = err.source().expect("wrapped errors chain their source");
    assert!(source.to_string().contains("invalid device spec"));
}
