//! Semantic verification of the compiler against the state-vector
//! simulator: the native decomposition and the routed physical circuit
//! must implement the *same unitary* as the logical program (up to global
//! phase, and up to the final tape permutation for routed circuits).
//!
//! This is the strongest correctness statement in the test suite: the
//! architectural metrics mean nothing if the compiled program computes
//! something else.

use proptest::prelude::*;
use tilt::circuit::{Circuit, Gate, Qubit};
use tilt::compiler::decompose::decompose;
use tilt::prelude::*;
use tilt_statevec::State;

const EPS: f64 = 1e-9;

/// Fidelity of two circuits' action on shared random probe states.
fn circuits_equivalent(n: usize, c1: &Circuit, c2: &Circuit) -> bool {
    (0..3u64).all(|seed| {
        let probe = State::random(n, seed);
        let f = probe.clone().run(c1).fidelity(&probe.run(c2));
        (f - 1.0).abs() < EPS
    })
}

#[test]
fn paper_cnot_recipe_is_exact() {
    let mut cnot = Circuit::new(2);
    cnot.cnot(Qubit(0), Qubit(1));
    assert!(circuits_equivalent(2, &cnot, &decompose(&cnot)));
}

#[test]
fn every_program_gate_decomposes_exactly() {
    let gates: Vec<(usize, Gate)> = vec![
        (1, Gate::H(Qubit(0))),
        (1, Gate::X(Qubit(0))),
        (1, Gate::Y(Qubit(0))),
        (1, Gate::Z(Qubit(0))),
        (1, Gate::S(Qubit(0))),
        (1, Gate::Sdg(Qubit(0))),
        (1, Gate::T(Qubit(0))),
        (1, Gate::Tdg(Qubit(0))),
        (1, Gate::SqrtX(Qubit(0))),
        (1, Gate::SqrtY(Qubit(0))),
        (2, Gate::Cnot(Qubit(0), Qubit(1))),
        (2, Gate::Cnot(Qubit(1), Qubit(0))),
        (2, Gate::Cz(Qubit(0), Qubit(1))),
        (2, Gate::Cphase(Qubit(0), Qubit(1), 0.73)),
        (2, Gate::Zz(Qubit(0), Qubit(1), -1.21)),
        (2, Gate::Swap(Qubit(0), Qubit(1))),
        (3, Gate::Toffoli(Qubit(0), Qubit(1), Qubit(2))),
        (3, Gate::Toffoli(Qubit(2), Qubit(0), Qubit(1))),
    ];
    for (n, g) in gates {
        let mut c = Circuit::new(n);
        c.push(g);
        let native = decompose(&c);
        assert!(native.is_native());
        assert!(
            circuits_equivalent(n, &c, &native),
            "decomposition of {g:?} is not unitarily equivalent"
        );
    }
}

#[test]
fn routed_circuit_equals_logical_up_to_final_permutation() {
    // Compile a genuinely swap-needing circuit on a tiny device, simulate
    // both the logical circuit and the routed physical circuit, and undo
    // the routing permutation on the physical result.
    let mut logical = Circuit::new(6);
    logical.h(Qubit(0));
    logical.cnot(Qubit(0), Qubit(5));
    logical.cphase(Qubit(5), Qubit(1), 0.9);
    logical.cnot(Qubit(2), Qubit(4));
    logical.h(Qubit(3));

    let spec = DeviceSpec::new(6, 3).unwrap();
    let out = Compiler::new(spec).compile(&logical).unwrap();
    assert!(out.report.swap_count > 0, "test needs real routing");

    let logical_state = State::zero(6).run(&decompose(&logical));
    let physical_state = State::zero(6).run(&decompose(&out.routed.circuit));
    // Logical qubit q ended at tape position log_to_phys[q]; relabel the
    // logical state into physical coordinates and compare.
    let perm: Vec<usize> = out.routed.final_mapping.log_to_phys().to_vec();
    let expected = logical_state.permute_qubits(&perm);
    let f = expected.fidelity(&physical_state);
    assert!((f - 1.0).abs() < EPS, "fidelity {f}");
}

#[test]
fn scheduled_program_equals_logical_up_to_final_permutation() {
    // Strongest end-to-end check: replay the *scheduled* op stream (the
    // machine-level program, moves ignored as they are identity on data)
    // and compare with the logical circuit.
    let mut logical = Circuit::new(6);
    logical.h(Qubit(1));
    logical.cnot(Qubit(1), Qubit(4));
    logical.zz(Qubit(0), Qubit(5), 0.4);
    logical.cnot(Qubit(3), Qubit(2));

    let spec = DeviceSpec::new(6, 3).unwrap();
    let out = Compiler::new(spec).compile(&logical).unwrap();

    let mut physical_state = State::zero(6);
    for (gate, _pos) in out.program.gates() {
        physical_state.apply(gate);
    }
    let logical_state = State::zero(6).run(&decompose(&logical));
    let perm: Vec<usize> = out.routed.final_mapping.log_to_phys().to_vec();
    let f = logical_state
        .permute_qubits(&perm)
        .fidelity(&physical_state);
    assert!((f - 1.0).abs() < EPS, "fidelity {f}");
}

#[test]
fn exact_router_output_is_also_semantically_correct() {
    let mut logical = Circuit::new(6);
    logical.cnot(Qubit(0), Qubit(5));
    logical.cnot(Qubit(4), Qubit(1));
    let spec = DeviceSpec::new(6, 3).unwrap();
    let native = decompose(&logical);
    let initial = tilt::compiler::Mapping::identity(6);
    let routed = tilt::compiler::route::exact::optimal_route(
        &native,
        spec,
        &initial,
        &tilt::compiler::route::ExactConfig::default(),
    )
    .unwrap();

    let logical_state = State::zero(6).run(&native);
    let physical_state = State::zero(6).run(&decompose(&routed.circuit));
    let perm: Vec<usize> = routed.final_mapping.log_to_phys().to_vec();
    let f = logical_state
        .permute_qubits(&perm)
        .fidelity(&physical_state);
    assert!((f - 1.0).abs() < EPS, "fidelity {f}");
}

/// Random-program strategy at two-qubit granularity.
fn random_program() -> impl Strategy<Value = Circuit> {
    (4usize..8).prop_flat_map(|n| {
        let gate = prop_oneof![
            (0..n).prop_map(|q| Gate::H(Qubit(q))),
            (0..n, -3.0f64..3.0).prop_map(|(q, a)| Gate::Rz(Qubit(q), a)),
            (0..n, 0..n, -3.0f64..3.0)
                .prop_filter("distinct", |(a, b, _)| a != b)
                .prop_map(|(a, b, t)| Gate::Zz(Qubit(a), Qubit(b), t)),
            (0..n, 0..n)
                .prop_filter("distinct", |(a, b)| a != b)
                .prop_map(|(a, b)| Gate::Cnot(Qubit(a), Qubit(b))),
        ];
        prop::collection::vec(gate, 1..14).prop_map(move |gates| Circuit::from_gates(n, gates))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Decomposition preserves semantics on random programs.
    #[test]
    fn decomposition_preserves_unitary(circuit in random_program()) {
        let native = decompose(&circuit);
        prop_assert!(native.is_native());
        let n = circuit.n_qubits();
        for seed in 0..2u64 {
            let probe = State::random(n, seed);
            let f = probe.clone().run(&circuit).fidelity(&probe.run(&native));
            prop_assert!((f - 1.0).abs() < EPS, "fidelity {f}");
        }
    }

    /// The full pipeline preserves semantics up to the final permutation
    /// on random programs routed through a head-constrained device.
    #[test]
    fn pipeline_preserves_unitary(circuit in random_program()) {
        let n = circuit.n_qubits();
        let head = (n / 2).max(2);
        let spec = DeviceSpec::new(n, head).unwrap();
        let out = Compiler::new(spec).compile(&circuit).unwrap();

        let logical_state = State::zero(n).run(&decompose(&circuit));
        let mut physical_state = State::zero(n);
        for (gate, _) in out.program.gates() {
            physical_state.apply(gate);
        }
        let perm: Vec<usize> = out.routed.final_mapping.log_to_phys().to_vec();
        let f = logical_state.permute_qubits(&perm).fidelity(&physical_state);
        prop_assert!((f - 1.0).abs() < EPS, "fidelity {f}");
    }
}
