//! Property and mutation tests for the static program-invariant
//! verifier.
//!
//! Two directions, both load-bearing:
//!
//! * **Soundness of the compilers** — every random circuit, compiled on
//!   every backend, must verify clean under `VerifyLevel::Strict`. A
//!   failure here is a real compiler bug (or an over-strict rule).
//! * **Sensitivity of the rules** — seeding a deliberate corruption
//!   into a compiled artifact (swapped operand, dropped reset,
//!   lengthened swap chain, reordered schedule) must always produce a
//!   diagnostic. A silent pass here means the verifier would also miss
//!   the real bug the corruption models.

use proptest::prelude::*;
use tilt::compiler::verify::verify_tilt;
use tilt::compiler::{TiltOp, TiltProgram};
use tilt::prelude::*;
use tilt::scale::verify_scaled;

/// A random circuit over the full native-representable gate surface.
fn circuit_strategy() -> impl Strategy<Value = Circuit> {
    (6usize..16).prop_flat_map(|n| {
        let gate = prop_oneof![
            (0..n).prop_map(|q| (0, q, q)),
            (0..n, 0..n)
                .prop_filter("distinct operands", |(a, b)| a != b)
                .prop_map(|(a, b)| (1, a, b)),
            (0..n).prop_map(|q| (2, q, q)),
        ];
        (Just(n), prop::collection::vec(gate, 1..36)).prop_map(|(n, specs)| {
            let mut c = Circuit::new(n);
            for (i, (kind, a, b)) in specs.into_iter().enumerate() {
                match kind {
                    0 => {
                        c.ry(Qubit(a), 0.05 + i as f64 * 0.01);
                    }
                    1 => {
                        c.cnot(Qubit(a), Qubit(b));
                    }
                    _ => {
                        c.h(Qubit(a));
                    }
                }
            }
            c
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every backend's compiler output passes its own rule pack: random
    /// circuits run clean under strict verification on TILT, QCCD, and
    /// the ELU array.
    #[test]
    fn random_circuits_verify_clean_on_every_backend(circuit in circuit_strategy()) {
        let n = circuit.n_qubits();
        let backends = [
            Backend::Tilt(DeviceSpec::new(n.max(4), (n / 2).max(2)).unwrap()),
            Backend::Qccd(QccdSpec::for_qubits(n, 5).unwrap()),
            Backend::Scaled(ScaleSpec::new(10, 4).unwrap()),
        ];
        for backend in backends {
            let engine = Engine::builder()
                .backend(backend)
                .verify(VerifyLevel::Strict)
                .build()
                .unwrap();
            let report = engine.run(&circuit);
            prop_assert!(
                report.is_ok(),
                "strict verification failed on {backend:?}: {}",
                report.unwrap_err()
            );
            prop_assert!(report.unwrap().diagnostics.is_empty());
        }
    }

    /// Swapping one gate operand out from under the head must trip the
    /// TILT pack (head-span at minimum).
    #[test]
    fn corrupted_operand_is_always_diagnosed(circuit in circuit_strategy(), pick in 0usize..1000) {
        let n = circuit.n_qubits();
        let spec = DeviceSpec::new(n.max(4), (n / 2).max(2)).unwrap();
        let out = Compiler::new(spec).compile(&circuit).unwrap();
        let cap = RouterKind::default().max_swap_span(spec);
        prop_assert!(verify_tilt(&out, cap).is_empty());

        let gates: Vec<usize> = out
            .program
            .ops()
            .iter()
            .enumerate()
            .filter(|(_, op)| matches!(op, TiltOp::Gate { .. }))
            .map(|(i, _)| i)
            .collect();
        if gates.is_empty() {
            return; // skip this case: nothing to corrupt
        }
        let idx = gates[pick % gates.len()];
        let mut ops = out.program.ops().to_vec();
        if let TiltOp::Gate { gate, .. } = &mut ops[idx] {
            // Send the first operand off the tape entirely.
            let target = gate.qubits()[0];
            *gate = gate.map_qubits(|q| if q == target { Qubit(spec.n_ions() + 3) } else { q });
        }
        let mut corrupt = out.clone();
        corrupt.program = TiltProgram::new_unchecked(spec, ops);
        let diags = verify_tilt(&corrupt, cap);
        prop_assert!(
            diags.iter().any(|d| d.rule == "tilt/head-span"),
            "corruption at op {idx} went undiagnosed: {diags:?}"
        );
    }
}

/// Dropping the comm-ion resets from a compiled ELU array must trip the
/// measured-unreset rule — the PR 4 bug class, now a standing invariant.
#[test]
fn dropped_reset_is_always_diagnosed() {
    let mut c = Circuit::new(16);
    for _ in 0..4 {
        c.cnot(Qubit(7), Qubit(8));
    }
    let mut program = compile_scaled(&c, &ScaleSpec::new(10, 4).unwrap()).unwrap();
    assert!(verify_scaled(&program).is_empty(), "clean before mutation");

    for out in &mut program.elu_outputs {
        let spec = *out.program.spec();
        let ops: Vec<TiltOp> = out
            .program
            .ops()
            .iter()
            .filter(|op| {
                !matches!(
                    op,
                    TiltOp::Gate {
                        gate: Gate::Reset(_),
                        ..
                    }
                )
            })
            .copied()
            .collect();
        out.program = TiltProgram::new_unchecked(spec, ops);
        let width = out.routed.circuit.n_qubits();
        let gates: Vec<Gate> = out
            .routed
            .circuit
            .iter()
            .filter(|g| !matches!(g, Gate::Reset(_)))
            .copied()
            .collect();
        out.routed.circuit = Circuit::from_gates(width, gates);
    }
    let diags = verify_scaled(&program);
    assert!(
        diags.iter().any(|d| d.rule == "scaled/measured-unreset"),
        "{diags:?}"
    );
}

/// Stretching a routed swap past the router's span cap must trip the
/// swap-chain rule.
#[test]
fn lengthened_swap_chain_is_always_diagnosed() {
    let mut c = Circuit::new(12);
    c.cnot(Qubit(0), Qubit(11));
    let spec = DeviceSpec::new(12, 4).unwrap();
    let out = Compiler::new(spec).compile(&c).unwrap();
    let cap = RouterKind::default().max_swap_span(spec);
    assert!(verify_tilt(&out, cap).is_empty(), "clean before mutation");

    let mut corrupt = out.clone();
    let idx = corrupt
        .routed
        .circuit
        .iter()
        .position(|g| matches!(g, Gate::Swap(_, _)))
        .expect("a head-4 route of a span-11 CNOT inserts swaps");
    let gates = corrupt.routed.circuit.gates_mut();
    if let Gate::Swap(a, _) = gates[idx] {
        gates[idx] = Gate::Swap(a, Qubit(a.index() + cap + 1));
    }
    let diags = verify_tilt(&corrupt, cap);
    assert!(
        diags.iter().any(|d| d.rule == "tilt/swap-chain"),
        "{diags:?}"
    );
}

/// Reordering one ion's gates in the scheduled stream must trip the
/// schedule-order rule.
#[test]
fn scrambled_schedule_is_always_diagnosed() {
    let mut c = Circuit::new(8);
    for i in 0..8 {
        c.ry(Qubit(i), 0.3);
        c.rz(Qubit(i), 0.7);
    }
    let spec = DeviceSpec::new(8, 4).unwrap();
    let out = Compiler::new(spec).compile(&c).unwrap();
    let cap = RouterKind::default().max_swap_span(spec);
    assert!(verify_tilt(&out, cap).is_empty(), "clean before mutation");

    let mut ops = out.program.ops().to_vec();
    // Reorder two gates on the *same* ion — swapping gates of different
    // ions is a legal reschedule the rule rightly permits.
    let gate_idxs: Vec<usize> = ops
        .iter()
        .enumerate()
        .filter(
            |(_, op)| matches!(op, TiltOp::Gate { gate, .. } if gate.qubits().contains(&Qubit(0))),
        )
        .map(|(i, _)| i)
        .collect();
    let (a, b) = (gate_idxs[0], gate_idxs[1]);
    ops.swap(a, b);
    let mut corrupt = out.clone();
    corrupt.program = TiltProgram::new_unchecked(spec, ops);
    let diags = verify_tilt(&corrupt, cap);
    assert!(
        diags.iter().any(|d| d.rule == "tilt/schedule-order"),
        "{diags:?}"
    );
}
