//! End-to-end integration tests: every paper benchmark through the full
//! LinQ pipeline at both paper head sizes, checking the structural
//! invariants the simulator relies on.

use tilt::prelude::*;
use tilt::sim;

/// Compile a benchmark on a device sized like the paper's (tape as wide
/// as the register, given head size).
fn compile(circuit: &Circuit, head: usize) -> CompileOutput {
    let spec = DeviceSpec::new(circuit.n_qubits(), head).expect("valid spec");
    Compiler::new(spec).compile(circuit).expect("compiles")
}

#[test]
fn all_benchmarks_compile_at_both_paper_head_sizes() {
    for b in paper_suite() {
        for head in [16, 32] {
            let out = compile(&b.circuit, head);
            assert!(
                out.program.gate_count() > 0,
                "{} head {head} produced an empty program",
                b.name
            );
        }
    }
}

#[test]
fn every_scheduled_gate_fits_under_its_head_position() {
    for b in paper_suite() {
        let out = compile(&b.circuit, 16);
        let spec = *out.program.spec();
        for (gate, pos) in out.program.gates() {
            for q in gate.qubits() {
                assert!(
                    spec.covers(pos, q.index()),
                    "{}: {gate:?} at head {pos} leaves {q} uncovered",
                    b.name
                );
            }
        }
    }
}

#[test]
fn scheduled_two_qubit_count_is_native_plus_swap_overhead() {
    for b in paper_suite() {
        let native = tilt::compiler::decompose::decompose(&b.circuit);
        let out = compile(&b.circuit, 16);
        assert_eq!(
            out.program.two_qubit_gate_count(),
            native.two_qubit_count() + 3 * out.report.swap_count,
            "{}",
            b.name
        );
    }
}

#[test]
fn routed_circuit_replays_to_the_original_logical_program() {
    // Replaying the inserted swaps over the initial mapping must recover
    // exactly the original logical two-qubit interaction sequence.
    for b in paper_suite() {
        let native = tilt::compiler::decompose::decompose(&b.circuit);
        let logical: Vec<(Qubit, Qubit)> = native
            .iter()
            .filter(|g| g.is_two_qubit())
            .map(|g| {
                let q = g.qubits();
                (q[0].min(q[1]), q[0].max(q[1]))
            })
            .collect();

        let out = compile(&b.circuit, 16);
        let mut mapping = out.routed.initial_mapping.clone();
        let mut replayed = Vec::with_capacity(logical.len());
        for g in &out.routed.circuit {
            match g {
                Gate::Swap(a, b) => mapping.swap_positions(a.index(), b.index()),
                g if g.is_two_qubit() => {
                    let q = g.qubits();
                    let la = mapping.logical_at(q[0].index());
                    let lb = mapping.logical_at(q[1].index());
                    replayed.push((la.min(lb), la.max(lb)));
                }
                _ => {}
            }
        }
        assert_eq!(replayed, logical, "{}", b.name);
    }
}

#[test]
fn bigger_head_never_needs_more_swaps() {
    for b in paper_suite() {
        let swaps16 = compile(&b.circuit, 16).report.swap_count;
        let swaps32 = compile(&b.circuit, 32).report.swap_count;
        assert!(
            swaps32 <= swaps16,
            "{}: head 32 used {swaps32} swaps vs {swaps16} at head 16",
            b.name
        );
    }
}

#[test]
fn short_distance_benchmarks_need_no_swaps() {
    for b in paper_suite() {
        if !b.needs_swaps(16) {
            let out = compile(&b.circuit, 16);
            assert_eq!(out.report.swap_count, 0, "{}", b.name);
        }
    }
}

#[test]
fn success_rates_are_valid_probabilities_and_ordered_by_architecture() {
    let noise = NoiseModel::default();
    let times = GateTimeModel::default();
    for b in paper_suite() {
        let ideal = estimate_ideal_success(&b.circuit, &noise, &times);
        assert!(ideal.success > 0.0 && ideal.success <= 1.0, "{}", b.name);
        for head in [16, 32] {
            let out = compile(&b.circuit, head);
            let s = estimate_success(&out.program, &noise, &times);
            assert!(
                s.success >= 0.0 && s.success <= 1.0,
                "{} head {head}: {}",
                b.name,
                s.success
            );
            assert!(
                s.success <= ideal.success * (1.0 + 1e-9),
                "{} head {head} beat the ideal device",
                b.name
            );
        }
    }
}

#[test]
fn execution_times_are_finite_and_positive() {
    let times = GateTimeModel::default();
    let exec = ExecTimeModel::default();
    for b in paper_suite() {
        for head in [16, 32] {
            let out = compile(&b.circuit, head);
            let t = sim::execution_time_us(&out.program, &times, &exec);
            assert!(t.is_finite() && t > 0.0, "{} head {head}: {t}", b.name);
        }
    }
}

#[test]
fn baseline_router_also_routes_every_benchmark() {
    for b in tilt::benchmarks::suite::long_distance_suite() {
        let spec = DeviceSpec::new(b.circuit.n_qubits(), 16).unwrap();
        let mut compiler = Compiler::new(spec);
        compiler.router(RouterKind::Stochastic(Default::default()));
        let out = compiler.compile(&b.circuit).expect("baseline compiles");
        for (gate, _) in out.program.gates() {
            if let Some(d) = gate.span() {
                assert!(d < 16, "{}: unrouted gate span {d}", b.name);
            }
        }
    }
}

#[test]
fn linq_beats_baseline_on_swaps_for_long_distance_benchmarks() {
    // The Fig. 6b claim, as an invariant on the real workloads.
    for b in tilt::benchmarks::suite::long_distance_suite() {
        let spec = DeviceSpec::new(b.circuit.n_qubits(), 16).unwrap();
        let linq = Compiler::new(spec).compile(&b.circuit).unwrap();
        let mut baseline_compiler = Compiler::new(spec);
        baseline_compiler.router(RouterKind::Stochastic(Default::default()));
        let baseline = baseline_compiler.compile(&b.circuit).unwrap();
        assert!(
            linq.report.swap_count <= baseline.report.swap_count,
            "{}: LinQ {} vs baseline {}",
            b.name,
            linq.report.swap_count,
            baseline.report.swap_count
        );
    }
}
