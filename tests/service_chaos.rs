//! Chaos suite for the overload-hardened service: fault-injected
//! compile panics, admission floods, expired deadlines, and snapshot
//! write crashes.
//!
//! The pins: (a) a mid-batch compile panic yields exactly one
//! `internal` error while its window neighbours answer byte-identically
//! to an unfaulted run; (b) a flood past the admission budget is shed
//! with `overloaded` + `retry_after_ms` while the admitted requests
//! complete; (c) a request whose `deadline_ms` has expired is shed
//! without compiling; (d) a fault-injected snapshot write failure
//! leaves the previous snapshot intact and loadable.
//!
//! Every test here holds a fault guard for all of its engine work —
//! including the tests that want *no* faults, which install
//! `FaultPlan::default()`. The guard's process-wide lock is what
//! serializes these tests; engine work outside a guard would race with
//! another test's armed plan.

use std::io::Cursor;
use std::sync::Arc;
use tilt::circuit::qasm;
use tilt::compiler::DeviceSpec;
use tilt::engine::faults::{install, FaultPlan};
use tilt::engine::{AdmissionControl, Backend, CompileCache, Engine, Service, ShutdownCause};
use tilt::report::Json;

/// Register width reserved for fault injection across the workspace:
/// real workloads in these tests stay ≤ 8 qubits, so arming
/// `panic_on_width: 37` never misfires on a neighbour.
const FAULT_WIDTH: usize = 37;

/// A device wide enough that a 37-qubit circuit compiles cleanly when
/// no fault is armed — the injected panic must be the *only* reason
/// the victim request fails.
fn builder() -> tilt::engine::EngineBuilder {
    Engine::builder().backend(Backend::Tilt(DeviceSpec::new(40, 8).unwrap()))
}

/// Drives one service over `input`, returning the raw response lines
/// (for byte-identity checks) and the shutdown summary.
fn drive(service: &mut Service, input: &str) -> (Vec<String>, tilt::engine::ServiceSummary) {
    let mut out = Vec::new();
    let summary = service
        .serve(Cursor::new(input.to_string()), &mut out, None)
        .unwrap();
    let text = String::from_utf8(out).unwrap();
    (text.lines().map(str::to_string).collect(), summary)
}

fn parsed(line: &str) -> Json {
    Json::parse(line).expect("every response line parses")
}

fn error_kind(resp: &Json) -> &str {
    resp.get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .expect("error responses carry error.kind")
}

fn error_message(resp: &Json) -> &str {
    resp.get("error")
        .and_then(|e| e.get("message"))
        .and_then(Json::as_str)
        .expect("error responses carry error.message")
}

fn is_ok(resp: &Json) -> bool {
    resp.get("ok") == Some(&Json::Bool(true))
}

/// The k-th healthy request line: distinct ≤ 8-qubit circuits so the
/// window never dedups them and the fault width never matches.
fn healthy_line(id: usize) -> String {
    let qasm_text = format!(
        "qreg q[8];\\nh q[{}];\\ncx q[{}], q[{}];\\n",
        id % 8,
        id % 7,
        7 - id % 4
    );
    format!("{{\"id\":{id},\"qasm\":\"{qasm_text}\"}}")
}

fn fault_line(id: usize) -> String {
    format!(
        "{{\"id\":{id},\"qasm\":\"qreg q[{FAULT_WIDTH}];\\nh q[0];\\ncx q[0], q[{}];\\n\"}}",
        FAULT_WIDTH - 1
    )
}

/// A scratch directory unique to one test (plain std, no tempfile dep).
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tilt-chaos-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Pin (a): one poisoned circuit in the middle of a window panics its
/// compile; the service answers it with a structured `internal` error
/// and every neighbour's response is byte-identical to an unfaulted
/// service's answer for the same request.
#[test]
fn a_mid_batch_panic_is_isolated_to_one_internal_error() {
    let _guard = install(FaultPlan {
        panic_on_width: Some(FAULT_WIDTH),
        ..FaultPlan::default()
    });

    const VICTIM: usize = 2;
    let mut faulted_input = String::new();
    let mut clean_input = String::new();
    for id in 0..6 {
        if id == VICTIM {
            faulted_input.push_str(&fault_line(id));
        } else {
            faulted_input.push_str(&healthy_line(id));
            clean_input.push_str(&healthy_line(id));
            clean_input.push('\n');
        }
        faulted_input.push('\n');
    }

    let mut service = Service::new(builder()).unwrap().with_window(8);
    let (lines, summary) = drive(&mut service, &faulted_input);
    assert_eq!(summary.cause, ShutdownCause::Eof);
    assert_eq!(lines.len(), 6);
    assert_eq!(summary.stats.ok, 5);
    assert_eq!(summary.stats.errors, 1);

    let victim = parsed(&lines[VICTIM]);
    assert!(!is_ok(&victim), "{victim:?}");
    assert_eq!(error_kind(&victim), "internal", "{victim:?}");
    assert!(
        error_message(&victim).contains("injected fault"),
        "{victim:?}"
    );

    // The neighbours must be byte-identical to an unfaulted service
    // answering the same requests. The fault plan stays armed for the
    // clean run — it only ever fires on width 37, which the clean
    // input never reaches.
    let mut clean = Service::new(builder()).unwrap().with_window(8);
    let (clean_lines, clean_summary) = drive(&mut clean, &clean_input);
    assert_eq!(clean_summary.stats.ok, 5);
    let neighbours: Vec<&String> = lines
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != VICTIM)
        .map(|(_, l)| l)
        .collect();
    assert_eq!(neighbours.len(), clean_lines.len());
    for (faulted, clean) in neighbours.iter().zip(&clean_lines) {
        assert_eq!(
            *faulted, clean,
            "neighbour responses must be byte-identical"
        );
    }
}

/// Pin: a non-Clifford program forced onto the stabilizer simulator
/// mid-batch is a structured `non_clifford` wire error naming the gate
/// and index — not an `internal` panic report — and the service keeps
/// serving: its window neighbours answer byte-identically to an
/// undisturbed service.
#[test]
fn a2_a_non_clifford_stabilizer_request_is_a_clean_wire_error() {
    const VICTIM: usize = 2;
    // `t q[0]` at gate index 1 is off the Clifford grid; forcing
    // `"method":"stabilizer"` makes the simulator reject it.
    let victim_line = format!(
        "{{\"id\":{VICTIM},\"method\":\"stabilizer\",\
         \"qasm\":\"qreg q[2];\\nh q[0];\\nt q[0];\\ncx q[0], q[1];\\n\"}}"
    );
    let mut mixed_input = String::new();
    let mut clean_input = String::new();
    for id in 0..6 {
        if id == VICTIM {
            mixed_input.push_str(&victim_line);
        } else {
            mixed_input.push_str(&healthy_line(id));
            clean_input.push_str(&healthy_line(id));
            clean_input.push('\n');
        }
        mixed_input.push('\n');
    }

    let mut service = Service::new(builder()).unwrap().with_window(8);
    let (lines, summary) = drive(&mut service, &mixed_input);
    assert_eq!(summary.cause, ShutdownCause::Eof);
    assert_eq!(lines.len(), 6);
    assert_eq!(summary.stats.ok, 5);
    assert_eq!(summary.stats.errors, 1);

    let victim = parsed(&lines[VICTIM]);
    assert!(!is_ok(&victim), "{victim:?}");
    assert_eq!(error_kind(&victim), "non_clifford", "{victim:?}");
    let message = error_message(&victim);
    assert!(message.contains("non-Clifford"), "{victim:?}");
    assert!(message.contains('t'), "must name the gate: {victim:?}");
    assert!(
        message.contains("index 1"),
        "must name the index: {victim:?}"
    );

    let mut clean = Service::new(builder()).unwrap().with_window(8);
    let (clean_lines, clean_summary) = drive(&mut clean, &clean_input);
    assert_eq!(clean_summary.stats.ok, 5);
    let neighbours: Vec<&String> = lines
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != VICTIM)
        .map(|(_, l)| l)
        .collect();
    assert_eq!(neighbours.len(), clean_lines.len());
    for (mixed, clean) in neighbours.iter().zip(&clean_lines) {
        assert_eq!(*mixed, clean, "neighbour responses must be byte-identical");
    }
}

/// Pin (b): flooding past the in-flight budget sheds the excess with
/// kind `overloaded` and a `retry_after_ms` hint, while every admitted
/// request still completes successfully.
#[test]
fn b_flood_past_the_admission_budget_sheds_with_a_retry_hint() {
    // No faults — but hold a (benign) guard so this engine work can't
    // race another test's armed plan.
    let _guard = install(FaultPlan::default());

    const BUDGET: usize = 2;
    const FLOOD: usize = 7;
    let admission = Arc::new(AdmissionControl::new(BUDGET, usize::MAX));
    let mut service = Service::new(builder())
        .unwrap()
        .with_admission(Arc::clone(&admission))
        .with_window(FLOOD + 1);

    let input: String = (0..FLOOD).map(|id| healthy_line(id) + "\n").collect();
    let (lines, summary) = drive(&mut service, &input);
    assert_eq!(lines.len(), FLOOD);

    for (id, line) in lines.iter().enumerate() {
        let resp = parsed(line);
        assert_eq!(resp.get("id").unwrap().as_f64(), Some(id as f64));
        if id < BUDGET {
            assert!(
                is_ok(&resp),
                "admitted request {id} must complete: {resp:?}"
            );
        } else {
            assert_eq!(error_kind(&resp), "overloaded", "{resp:?}");
            let retry = resp
                .get("error")
                .unwrap()
                .get("retry_after_ms")
                .and_then(Json::as_f64)
                .expect("overloaded responses carry retry_after_ms");
            assert!(retry >= 1.0, "retry_after_ms must be positive: {resp:?}");
        }
    }
    assert_eq!(summary.stats.ok as usize, BUDGET);
    assert_eq!(summary.stats.shed_overloaded as usize, FLOOD - BUDGET);
    assert_eq!(summary.stats.shed_deadline, 0);

    // Every permit drained once the responses were written.
    let counters = admission.counters();
    assert_eq!(counters.in_flight, 0);
    assert_eq!(counters.in_flight_bytes, 0);
}

/// Pin (c): a request whose deadline has already expired is shed with
/// kind `deadline_exceeded` *without compiling*. The proof that no
/// compile ran: the request's circuit is the fault width, and the
/// armed compile panic never fires — the response is a deadline shed,
/// not an `internal` panic report.
#[test]
fn c_an_expired_deadline_is_shed_without_compiling() {
    let _guard = install(FaultPlan {
        panic_on_width: Some(FAULT_WIDTH),
        ..FaultPlan::default()
    });

    let expired = format!(
        "{{\"id\":\"late\",\"qasm\":\"qreg q[{FAULT_WIDTH}];\\nh q[0];\\n\",\"deadline_ms\":0}}"
    );
    let input = format!("{expired}\n{}\n", healthy_line(1));

    let mut service = Service::new(builder()).unwrap();
    let (lines, summary) = drive(&mut service, &input);
    assert_eq!(lines.len(), 2);

    let shed = parsed(&lines[0]);
    assert!(!is_ok(&shed), "{shed:?}");
    assert_eq!(error_kind(&shed), "deadline_exceeded", "{shed:?}");
    // The healthy follow-up proves the loop survived the shed.
    assert!(is_ok(&parsed(&lines[1])));
    assert_eq!(summary.stats.shed_deadline, 1);
    assert_eq!(summary.stats.shed_overloaded, 0);
    assert_eq!(summary.stats.ok, 1);
}

/// Pin (d): a fault-injected crash mid-snapshot-write (partial
/// temporary file) and an outright write error both fail `save` — and
/// neither disturbs the previous snapshot, which reloads in full.
#[test]
fn d_a_failed_snapshot_write_leaves_the_previous_snapshot_intact() {
    let dir = scratch_dir("snapshot");
    let cache = Arc::new(CompileCache::new(16));
    let written;
    {
        let _guard = install(FaultPlan::default());
        let engine = builder().compile_cache(Arc::clone(&cache)).build().unwrap();
        for k in 0..3 {
            let qasm_text = format!("qreg q[6];\nh q[{k}];\ncx q[{k}], q[5];\n");
            engine.run(&qasm::parse_qasm(&qasm_text).unwrap()).unwrap();
        }
        written = cache.save(&dir).unwrap();
        assert_eq!(written, 3);
    }

    // A crash after a partial write of the temporary file: save fails,
    // and the torn bytes never reach the live snapshot.
    {
        let _guard = install(FaultPlan {
            snapshot_truncate_bytes: Some(12),
            ..FaultPlan::default()
        });
        let err = cache.save(&dir).unwrap_err();
        assert!(err.to_string().contains("partial snapshot write"), "{err}");
    }
    // An outright write error before any bytes move.
    {
        let _guard = install(FaultPlan {
            snapshot_write_error: true,
            ..FaultPlan::default()
        });
        let err = cache.save(&dir).unwrap_err();
        assert!(err.to_string().contains("snapshot write error"), "{err}");
    }

    // The previous snapshot is intact: a cold cache reloads every
    // entry with zero rejects, and serves them as hits.
    {
        let _guard = install(FaultPlan::default());
        let fresh = Arc::new(CompileCache::new(16));
        let (loaded, rejected) = fresh.load(&dir).unwrap();
        assert_eq!((loaded, rejected), (written, 0));

        let mut service = Service::new(builder().compile_cache(Arc::clone(&fresh))).unwrap();
        let request =
            "{\"id\":0,\"qasm\":\"qreg q[6];\\nh q[0];\\ncx q[0], q[5];\\n\"}\n".to_string();
        let (lines, summary) = drive(&mut service, &request);
        assert!(is_ok(&parsed(&lines[0])));
        assert_eq!(summary.cache.hits, 1, "reloaded entries must serve hits");
        assert_eq!(summary.cache.misses, 0);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A panic inside the cache's locked critical section genuinely
/// poisons the mutex; the service answers that request with an
/// `internal` error and keeps serving — later inserts and probes
/// recover the poisoned lock instead of propagating it forever.
#[test]
fn a_poisoned_cache_lock_is_recovered_not_propagated() {
    let _guard = install(FaultPlan {
        cache_insert_panic: true,
        ..FaultPlan::default()
    });

    // Three distinct circuits, one per window (window 1 forces a
    // flush — and a cache insert — per request). The first insert
    // panics and poisons the lock; the rest must still be answered
    // from a recovered cache.
    let input = format!(
        "{}\n{}\n{}\n{}\n",
        healthy_line(0),
        healthy_line(1),
        healthy_line(2),
        healthy_line(0)
    );
    let mut service = Service::new(builder()).unwrap().with_window(1);
    let (lines, summary) = drive(&mut service, &input);
    assert_eq!(lines.len(), 4);

    let first = parsed(&lines[0]);
    assert!(!is_ok(&first), "{first:?}");
    assert_eq!(error_kind(&first), "internal", "{first:?}");
    assert!(is_ok(&parsed(&lines[1])));
    assert!(is_ok(&parsed(&lines[2])));
    // The victim's circuit never made it into the cache, so its
    // repeat is a fresh (successful) compile through the recovered
    // lock, not a hit.
    assert!(is_ok(&parsed(&lines[3])));
    assert_eq!(summary.stats.ok, 3);
    assert_eq!(summary.stats.errors, 1);
}
