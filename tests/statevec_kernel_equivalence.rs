//! Property tests pinning the optimized state-vector kernels to the
//! retained naive reference path.
//!
//! Randomized circuits over the full gate set run through every
//! execution mode — fused, unfused, serial, and forced-rayon — and each
//! result must agree with the seed's full-scan implementation to a
//! fidelity of 1e-12. The forced-parallel mode exercises the
//! `rayon::join` splitting even below the auto-parallel threshold (and
//! degrades to inline execution on single-core hosts, so the test is
//! deterministic everywhere).

use proptest::prelude::*;
use tilt::circuit::{Circuit, Gate, Qubit};
use tilt::statevec::{simd, Complex, RunOptions, State};

const EPS: f64 = 1e-12;

/// A random circuit over the complete unitary gate set (no measurement
/// — the verifier is pure-state), 4–8 qubits, up to 60 gates.
fn circuit_strategy() -> impl Strategy<Value = Circuit> {
    (4usize..9).prop_flat_map(|n| {
        let q = move || (0..n).prop_map(Qubit);
        let pair = move || {
            (0..n, 0..n)
                .prop_filter("distinct operands", |(a, b)| a != b)
                .prop_map(|(a, b)| (Qubit(a), Qubit(b)))
        };
        let triple = move || {
            (0..n, 0..n, 0..n)
                .prop_filter("distinct operands", |(a, b, c)| a != b && b != c && a != c)
                .prop_map(|(a, b, c)| (Qubit(a), Qubit(b), Qubit(c)))
        };
        let angle = || -6.0f64..6.0;
        let gate = prop_oneof![
            q().prop_map(Gate::H),
            q().prop_map(Gate::X),
            q().prop_map(Gate::Y),
            q().prop_map(Gate::Z),
            q().prop_map(Gate::S),
            q().prop_map(Gate::Sdg),
            q().prop_map(Gate::T),
            q().prop_map(Gate::Tdg),
            q().prop_map(Gate::SqrtX),
            q().prop_map(Gate::SqrtY),
            (q(), angle()).prop_map(|(q, a)| Gate::Rx(q, a)),
            (q(), angle()).prop_map(|(q, a)| Gate::Ry(q, a)),
            (q(), angle()).prop_map(|(q, a)| Gate::Rz(q, a)),
            pair().prop_map(|(a, b)| Gate::Cnot(a, b)),
            pair().prop_map(|(a, b)| Gate::Cz(a, b)),
            (pair(), angle()).prop_map(|((a, b), t)| Gate::Cphase(a, b, t)),
            (pair(), angle()).prop_map(|((a, b), t)| Gate::Zz(a, b, t)),
            (pair(), angle()).prop_map(|((a, b), t)| Gate::Xx(a, b, t)),
            pair().prop_map(|(a, b)| Gate::Swap(a, b)),
            triple().prop_map(|(a, b, c)| Gate::Toffoli(a, b, c)),
            Just(Gate::Barrier),
        ];
        prop::collection::vec(gate, 0..60).prop_map(move |gates| Circuit::from_gates(n, gates))
    })
}

/// Every execution mode the optimized pipeline exposes.
fn modes() -> [(&'static str, RunOptions); 4] {
    [
        ("fused/auto", RunOptions::optimized()),
        ("unfused/serial", RunOptions::serial_unfused()),
        (
            "fused/rayon",
            RunOptions {
                fuse: true,
                parallel: Some(true),
            },
        ),
        (
            "unfused/rayon",
            RunOptions {
                fuse: false,
                parallel: Some(true),
            },
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All optimized paths reproduce the naive path on random circuits
    /// from a random initial state.
    #[test]
    fn optimized_paths_match_naive(circuit in circuit_strategy(), seed in 0u64..1000) {
        let n = circuit.n_qubits();
        let probe = State::random(n, seed);
        let reference = probe.clone().run_naive(&circuit);
        for (name, opts) in modes() {
            let out = probe.clone().run_with(&circuit, opts);
            let f = out.fidelity(&reference);
            prop_assert!(
                (f - 1.0).abs() < EPS,
                "{name} diverged: fidelity {f}\ncircuit: {circuit}"
            );
            let norm = out.norm_sq();
            prop_assert!((norm - 1.0).abs() < EPS, "{name} broke unitarity: {norm}");
        }
    }

    /// Single-gate dispatch (`apply`) agrees with the naive path
    /// amplitude-by-amplitude — no global-phase slack at this level.
    #[test]
    fn apply_matches_naive_exactly(circuit in circuit_strategy(), seed in 0u64..1000) {
        let n = circuit.n_qubits();
        let mut fast = State::random(n, seed);
        let mut slow = fast.clone();
        for g in &circuit {
            fast.apply(g);
            slow.apply_naive(g);
        }
        for x in 0..1usize << n {
            let (a, b) = (fast.amplitude(x), slow.amplitude(x));
            prop_assert!(
                (a.re - b.re).abs() < EPS && (a.im - b.im).abs() < EPS,
                "amplitude {x} diverged: {a:?} vs {b:?}\ncircuit: {circuit}"
            );
        }
    }

    /// Fusion never changes the number of qubits a circuit acts on, and
    /// fused execution from |0…0⟩ matches unfused execution.
    #[test]
    fn fused_equals_unfused_from_zero(circuit in circuit_strategy()) {
        let n = circuit.n_qubits();
        let fused = State::zero(n).run_with(&circuit, RunOptions::optimized());
        let unfused = State::zero(n).run_with(&circuit, RunOptions::serial_unfused());
        let f = fused.fidelity(&unfused);
        prop_assert!((f - 1.0).abs() < EPS, "fidelity {f}\ncircuit: {circuit}");
    }

    /// Permutation-dense circuits pin the parallel `CNOT`/`SWAP`/
    /// `Toffoli` kernels (forced-rayon modes) to the naive path.
    #[test]
    fn parallel_permutation_kernels_match_naive(circuit in permutation_strategy(), seed in 0u64..1000) {
        let n = circuit.n_qubits();
        let probe = State::random(n, seed);
        let reference = probe.clone().run_naive(&circuit);
        for (name, opts) in modes() {
            let out = probe.clone().run_with(&circuit, opts);
            let f = out.fidelity(&reference);
            prop_assert!(
                (f - 1.0).abs() < EPS,
                "{name} diverged on permutation circuit: fidelity {f}\ncircuit: {circuit}"
            );
        }
    }

    /// Diagonal-dense circuits (long `Rz`/`CZ`/`CPhase`/`ZZ` stretches)
    /// exercise the batched hierarchical sweep; every mode must still
    /// match naive.
    #[test]
    fn diagonal_run_batching_matches_naive(circuit in diagonal_strategy(), seed in 0u64..1000) {
        let n = circuit.n_qubits();
        let probe = State::random(n, seed);
        let reference = probe.clone().run_naive(&circuit);
        for (name, opts) in modes() {
            let out = probe.clone().run_with(&circuit, opts);
            let f = out.fidelity(&reference);
            prop_assert!(
                (f - 1.0).abs() < EPS,
                "{name} diverged on diagonal circuit: fidelity {f}\ncircuit: {circuit}"
            );
        }
    }
}

/// Circuits made almost entirely of permutation gates, so the
/// contiguous-run swap kernels (and their parallel splits) dominate.
fn permutation_strategy() -> impl Strategy<Value = Circuit> {
    (4usize..9).prop_flat_map(|n| {
        let q = move || (0..n).prop_map(Qubit);
        let pair = move || {
            (0..n, 0..n)
                .prop_filter("distinct operands", |(a, b)| a != b)
                .prop_map(|(a, b)| (Qubit(a), Qubit(b)))
        };
        let triple = move || {
            (0..n, 0..n, 0..n)
                .prop_filter("distinct operands", |(a, b, c)| a != b && b != c && a != c)
                .prop_map(|(a, b, c)| (Qubit(a), Qubit(b), Qubit(c)))
        };
        let gate = prop_oneof![
            pair().prop_map(|(a, b)| Gate::Cnot(a, b)),
            pair().prop_map(|(a, b)| Gate::Swap(a, b)),
            triple().prop_map(|(a, b, c)| Gate::Toffoli(a, b, c)),
            q().prop_map(Gate::X),
            q().prop_map(Gate::H),
        ];
        prop::collection::vec(gate, 1..60).prop_map(move |gates| Circuit::from_gates(n, gates))
    })
}

/// Circuits dominated by diagonal gates with occasional `H` separators,
/// producing exactly the long fused-diagonal runs the batcher targets.
fn diagonal_strategy() -> impl Strategy<Value = Circuit> {
    (4usize..9).prop_flat_map(|n| {
        let q = move || (0..n).prop_map(Qubit);
        let pair = move || {
            (0..n, 0..n)
                .prop_filter("distinct operands", |(a, b)| a != b)
                .prop_map(|(a, b)| (Qubit(a), Qubit(b)))
        };
        let angle = || -6.0f64..6.0;
        let gate = prop_oneof![
            (q(), angle()).prop_map(|(q, a)| Gate::Rz(q, a)),
            q().prop_map(Gate::S),
            q().prop_map(Gate::T),
            q().prop_map(Gate::Z),
            pair().prop_map(|(a, b)| Gate::Cz(a, b)),
            (pair(), angle()).prop_map(|((a, b), t)| Gate::Cphase(a, b, t)),
            (pair(), angle()).prop_map(|((a, b), t)| Gate::Zz(a, b, t)),
            // Rare non-diagonal separators force run flushes mid-circuit.
            q().prop_map(Gate::H),
        ];
        prop::collection::vec(gate, 1..80).prop_map(move |gates| Circuit::from_gates(n, gates))
    })
}

/// A deterministic deep-circuit check at a size that crosses the
/// parallel threshold logic paths more meaningfully than the property
/// sizes (kept small enough for CI).
#[test]
fn deep_circuit_all_modes_agree() {
    let n = 10;
    let mut c = Circuit::new(n);
    for layer in 0..20 {
        for q in 0..n {
            c.rz(Qubit(q), 0.1 + (layer * n + q) as f64 * 0.01);
            c.h(Qubit(q));
        }
        for q in 0..n - 1 {
            if (layer + q) % 3 == 0 {
                c.cnot(Qubit(q), Qubit(q + 1));
            } else {
                c.cphase(Qubit(q), Qubit(q + 1), 0.2 + q as f64 * 0.05);
            }
        }
    }
    let probe = State::random(n, 2024);
    let reference = probe.clone().run_naive(&c);
    for (name, opts) in modes() {
        let out = probe.clone().run_with(&c, opts);
        let f = out.fidelity(&reference);
        assert!((f - 1.0).abs() < EPS, "{name}: fidelity {f}");
    }
}

/// Regression pin for the fusion cost model (ROADMAP item): the
/// Clifford+T-lowered Cuccaro adder must fuse into *monomial*
/// (permutation + phase) two-qubit blocks only — never dense 4×4s.
/// Before the fix, `H`/rotations merging into CNOT blocks densified
/// them, and the dense pass made fused execution ~2× slower than
/// unfused on one core; monomial blocks dispatch to the cheap
/// phase-sweep + swap kernels instead.
#[test]
fn cuccaro_adder_fuses_to_monomial_blocks_only() {
    use tilt::benchmarks::adder::cuccaro_adder;
    use tilt::statevec::fuse::{fuse, is_monomial4, FusedOp};
    let adder = cuccaro_adder(8); // 18 qubits of raw CNOT/T/H traffic
    let ops = fuse(&adder);
    let mut two_q_blocks = 0usize;
    for op in &ops {
        if let FusedOp::TwoQ { m, .. } = op {
            two_q_blocks += 1;
            assert!(
                is_monomial4(m),
                "a dense fused block leaked into the adder stream: {m:?}"
            );
        }
    }
    assert!(two_q_blocks > 0, "the adder must produce fused 2q blocks");
}

/// The monomial fast path must stay exact: fused execution of a small
/// Cuccaro adder (T-dressed CNOT traffic end to end) matches the naive
/// reference in every mode.
#[test]
fn cuccaro_adder_all_modes_agree() {
    use tilt::benchmarks::adder::cuccaro_adder;
    let adder = cuccaro_adder(4); // 10 qubits: cheap enough for debug CI
    let n = adder.n_qubits();
    let probe = State::random(n, 4242);
    let reference = probe.clone().run_naive(&adder);
    for (name, opts) in modes() {
        let out = probe.clone().run_with(&adder, opts);
        let f = out.fidelity(&reference);
        assert!((f - 1.0).abs() < EPS, "{name}: fidelity {f}");
    }
}

// --- SIMD dispatch tier vs scalar fallback --------------------------------
//
// The compute kernels are tier dispatchers: `avx2_fma` where the host
// supports it, the portable scalar bodies otherwise (and always under
// `TILT_SIMD=off`). These properties pin the dispatched tier to the
// forced-scalar tier *and* to an index-arithmetic naive reference at
// 1e-12 over random register sizes (down to 2 amplitudes — smaller than
// one SIMD block), qubit positions/strides, and matrices. On a host
// without AVX2 both runs take the scalar path and the comparison is
// trivially exact, which is what the `TILT_SIMD=off` CI leg asserts.

/// Runs `f` twice from the same initial state: once under normal
/// dispatch, once with the scalar tier forced. The tier is
/// process-global, so the toggle is serialized against every other
/// bitwise-sensitive test via the crate's tier lock.
fn both_tiers(init: &[Complex], f: impl Fn(&mut [Complex])) -> (Vec<Complex>, Vec<Complex>) {
    let _guard = simd::test_tier_lock();
    let mut dispatched = init.to_vec();
    simd::force_scalar(false);
    f(&mut dispatched);
    let mut scalar = init.to_vec();
    simd::force_scalar(true);
    f(&mut scalar);
    simd::force_scalar(false);
    (dispatched, scalar)
}

fn assert_close(got: &[Complex], want: &[Complex], what: &str) {
    for (x, (a, b)) in got.iter().zip(want).enumerate() {
        assert!(
            (a.re - b.re).abs() < EPS && (a.im - b.im).abs() < EPS,
            "{what}: amplitude {x} diverged: {a:?} vs {b:?}"
        );
    }
}

/// A random register of `2^n` amplitudes (not normalized — kernel
/// linearity does not care, and unnormalized inputs catch scaling bugs).
fn raw_state(n: usize) -> impl Strategy<Value = Vec<Complex>> {
    prop::collection::vec(
        (-1.0f64..1.0, -1.0f64..1.0).prop_map(|(re, im)| Complex::new(re, im)),
        1usize << n,
    )
}

fn matrix2() -> impl Strategy<Value = [[Complex; 2]; 2]> {
    prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 4).prop_map(|v| {
        let c = |i: usize| Complex::new(v[i].0, v[i].1);
        [[c(0), c(1)], [c(2), c(3)]]
    })
}

fn matrix4() -> impl Strategy<Value = [[Complex; 4]; 4]> {
    prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 16).prop_map(|v| {
        let c = |i: usize| Complex::new(v[i].0, v[i].1);
        [
            [c(0), c(1), c(2), c(3)],
            [c(4), c(5), c(6), c(7)],
            [c(8), c(9), c(10), c(11)],
            [c(12), c(13), c(14), c(15)],
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `apply_1q`: dispatched == forced-scalar == naive bit-arithmetic
    /// reference, over every stride (q = 0 is the interleaved SIMD
    /// block path; n = 1 is a 2-amplitude state below one SIMD block).
    #[test]
    fn simd_apply_1q_matches_scalar_and_naive(
        (_n, q, init) in (1usize..9).prop_flat_map(|n| (Just(n), 0..n, raw_state(n))),
        m in matrix2(),
    ) {
        use tilt::statevec::kernels::apply_1q;
        let (dispatched, scalar) = both_tiers(&init, |amps| apply_1q(amps, q, m));
        let mut naive = init.clone();
        for x in 0..init.len() {
            if x & (1 << q) == 0 {
                let y = x | (1 << q);
                naive[x] = m[0][0] * init[x] + m[0][1] * init[y];
                naive[y] = m[1][0] * init[x] + m[1][1] * init[y];
            }
        }
        assert_close(&dispatched, &scalar, "dispatched vs scalar");
        assert_close(&dispatched, &naive, "dispatched vs naive");
    }

    /// `apply_2q` over random (qlo, qhi) pairs, covering the qlo = 0
    /// interleaved path and the zipped-runs path.
    #[test]
    fn simd_apply_2q_matches_scalar_and_naive(
        (_n, qlo, qhi, init) in (2usize..9).prop_flat_map(|n| {
            (0..n, 0..n)
                .prop_filter("distinct", |(a, b)| a != b)
                .prop_flat_map(move |(a, b)| (Just(n), Just(a.min(b)), Just(a.max(b)), raw_state(n)))
        }),
        m in matrix4(),
    ) {
        use tilt::statevec::kernels::apply_2q;
        let (dispatched, scalar) = both_tiers(&init, |amps| apply_2q(amps, qlo, qhi, m));
        let mut naive = init.clone();
        for x in 0..init.len() {
            if x & (1 << qlo) == 0 && x & (1 << qhi) == 0 {
                let idx = [x, x | (1 << qlo), x | (1 << qhi), x | (1 << qlo) | (1 << qhi)];
                for (r, &xi) in idx.iter().enumerate() {
                    let mut acc = Complex::ZERO;
                    for (c, &xc) in idx.iter().enumerate() {
                        acc += m[r][c] * init[xc];
                    }
                    naive[xi] = acc;
                }
            }
        }
        assert_close(&dispatched, &scalar, "dispatched vs scalar");
        assert_close(&dispatched, &naive, "dispatched vs naive");
    }

    /// The diagonal/phase kernels (the cache-blocked plane sweeps) and
    /// the global scale.
    #[test]
    fn simd_diag_kernels_match_scalar_and_naive(
        (_n, q, init) in (1usize..9).prop_flat_map(|n| (Just(n), 0..n, raw_state(n))),
        (t0, t1) in (-6.0f64..6.0, -6.0f64..6.0),
    ) {
        use tilt::statevec::kernels::{diag_1q, phase_1q, scale_all};
        let (p0, p1) = (Complex::cis(t0), Complex::cis(t1));

        let (dispatched, scalar) = both_tiers(&init, |amps| diag_1q(amps, q, p0, p1));
        let naive: Vec<Complex> = init
            .iter()
            .enumerate()
            .map(|(x, &a)| a * if x & (1 << q) == 0 { p0 } else { p1 })
            .collect();
        assert_close(&dispatched, &scalar, "diag_1q dispatched vs scalar");
        assert_close(&dispatched, &naive, "diag_1q dispatched vs naive");

        let (dispatched, scalar) = both_tiers(&init, |amps| phase_1q(amps, q, p1));
        let naive: Vec<Complex> = init
            .iter()
            .enumerate()
            .map(|(x, &a)| if x & (1 << q) == 0 { a } else { a * p1 })
            .collect();
        assert_close(&dispatched, &scalar, "phase_1q dispatched vs scalar");
        assert_close(&dispatched, &naive, "phase_1q dispatched vs naive");

        let (dispatched, scalar) = both_tiers(&init, |amps| scale_all(amps, p0));
        let naive: Vec<Complex> = init.iter().map(|&a| a * p0).collect();
        assert_close(&dispatched, &scalar, "scale_all dispatched vs scalar");
        assert_close(&dispatched, &naive, "scale_all dispatched vs naive");
    }

    /// The `XX(θ)` orbit rotation over random operand pairs (qlo = 0
    /// orbits are single-amplitude zips that stay scalar by design).
    #[test]
    fn simd_xx_rotate_matches_scalar_and_naive(
        (_n, a, b, init) in (2usize..9).prop_flat_map(|n| {
            (0..n, 0..n)
                .prop_filter("distinct", |(a, b)| a != b)
                .prop_flat_map(move |(a, b)| (Just(n), Just(a), Just(b), raw_state(n)))
        }),
        theta in -6.0f64..6.0,
    ) {
        use tilt::statevec::kernels::xx_rotate;
        let cos = Complex::new((theta / 2.0).cos(), 0.0);
        let isin = Complex::new(0.0, -(theta / 2.0).sin());
        let (dispatched, scalar) = both_tiers(&init, |amps| xx_rotate(amps, a, b, cos, isin));
        let mask = (1 << a) | (1 << b);
        let mut naive = init.clone();
        for x in 0..init.len() {
            let y = x ^ mask;
            if x < y {
                naive[x] = cos * init[x] + isin * init[y];
                naive[y] = cos * init[y] + isin * init[x];
            }
        }
        assert_close(&dispatched, &scalar, "dispatched vs scalar");
        assert_close(&dispatched, &naive, "dispatched vs naive");
    }

    /// The fused diag-run path: random term batches through the
    /// hierarchical tree sweep (n up to 9 reaches the `Split` node above
    /// the table cutoff; the SIMD table sweep runs the leaves).
    #[test]
    fn simd_diag_run_matches_scalar_and_naive(
        (_n, init, terms) in (1usize..10).prop_flat_map(|n| {
            let term = term_strategy(n);
            (Just(n), raw_state(n), prop::collection::vec(term, 1..6))
        }),
    ) {
        use tilt::statevec::kernels::apply_diag_run;
        for parallel in [false, true] {
            let (dispatched, scalar) =
                both_tiers(&init, |amps| apply_diag_run(amps, &terms, parallel));
            let mut naive = init.clone();
            for (x, amp) in naive.iter_mut().enumerate() {
                for t in &terms {
                    *amp = *amp * t.factor(x);
                }
            }
            assert_close(&dispatched, &scalar, "diag run dispatched vs scalar");
            assert_close(&dispatched, &naive, "diag run dispatched vs naive");
        }
    }

    /// Whole-circuit agreement across tiers: the full `run_with`
    /// pipeline (fusion, batching, parallel splits) produces the same
    /// state under forced-scalar as under normal dispatch.
    #[test]
    fn simd_full_pipeline_matches_scalar(circuit in circuit_strategy(), seed in 0u64..1000) {
        let n = circuit.n_qubits();
        let probe = State::random(n, seed);
        for (name, opts) in modes() {
            let _guard = simd::test_tier_lock();
            simd::force_scalar(false);
            let dispatched = probe.clone().run_with(&circuit, opts);
            simd::force_scalar(true);
            let scalar = probe.clone().run_with(&circuit, opts);
            simd::force_scalar(false);
            drop(_guard);
            let f = dispatched.fidelity(&scalar);
            prop_assert!(
                (f - 1.0).abs() < EPS,
                "{name} tiers diverged: fidelity {f}\ncircuit: {circuit}"
            );
        }
    }
}

/// A random normalized diagonal term on qubits below `n` (the same
/// shape the fusion batcher emits).
fn term_strategy(n: usize) -> impl Strategy<Value = tilt::statevec::kernels::DiagTerm> {
    use tilt::statevec::kernels::DiagTerm;
    let one = (0..n, -6.0f64..6.0).prop_map(|(q, t)| DiagTerm::One {
        q,
        p: [Complex::ONE, Complex::cis(t)],
    });
    if n < 2 {
        return one.boxed();
    }
    let two = (0..n, 0..n, -6.0f64..6.0, -6.0f64..6.0, -6.0f64..6.0)
        .prop_filter("distinct", |(a, b, ..)| a != b)
        .prop_map(|(a, b, t1, t2, t3)| DiagTerm::Two {
            qlo: a.min(b),
            qhi: a.max(b),
            d: [
                Complex::ONE,
                Complex::cis(t1),
                Complex::cis(t2),
                Complex::cis(t3),
            ],
        });
    prop_oneof![one, two].boxed()
}

/// A QFT-style ladder wide enough that one diagonal run spans more
/// distinct qubits than the batcher's budget, forcing mid-run flushes
/// (the QFT row shape is exactly the workload the batching targets).
#[test]
fn wide_diagonal_ladder_all_modes_agree() {
    let n = 15;
    let mut c = Circuit::new(n);
    for j in 0..n {
        c.h(Qubit(j));
        for k in (j + 1)..n {
            c.cphase(
                Qubit(j),
                Qubit(k),
                std::f64::consts::PI / (1 << (k - j)) as f64,
            );
        }
    }
    let probe = State::random(n, 77);
    let reference = probe.clone().run_naive(&c);
    for (name, opts) in modes() {
        let out = probe.clone().run_with(&c, opts);
        let f = out.fidelity(&reference);
        assert!((f - 1.0).abs() < EPS, "{name}: fidelity {f}");
    }
}
