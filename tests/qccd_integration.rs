//! Cross-crate QCCD integration: the comparator architecture against the
//! real paper benchmarks, plus the Fig. 8 shape claims as invariants.

use tilt::compiler::decompose::decompose;
use tilt::prelude::*;

/// Best QCCD success over the paper's 15–35 ions-per-trap sweep.
fn qccd_best_success(circuit: &Circuit) -> f64 {
    let native = decompose(circuit);
    let noise = NoiseModel::default();
    let times = GateTimeModel::default();
    [15usize, 17, 20, 25, 30, 35]
        .iter()
        .map(|&ions| {
            let spec = QccdSpec::for_qubits(circuit.n_qubits(), ions).unwrap();
            let program = compile_qccd(&native, &spec).unwrap();
            estimate_qccd_success(&program, &noise, &times, &QccdParams::default()).success
        })
        .fold(0.0f64, f64::max)
}

fn tilt_success(circuit: &Circuit, head: usize) -> f64 {
    let spec = DeviceSpec::new(circuit.n_qubits(), head).unwrap();
    let out = Compiler::new(spec).compile(circuit).unwrap();
    estimate_success(
        &out.program,
        &NoiseModel::default(),
        &GateTimeModel::default(),
    )
    .success
}

#[test]
fn qccd_routes_every_paper_benchmark() {
    for b in paper_suite() {
        let native = decompose(&b.circuit);
        let spec = QccdSpec::for_qubits(b.circuit.n_qubits(), 17).unwrap();
        let program = compile_qccd(&native, &spec).unwrap();
        assert_eq!(
            program.two_qubit_gate_count(),
            native.two_qubit_count(),
            "{}",
            b.name
        );
    }
}

#[test]
fn nearest_neighbour_apps_favor_tilt_over_qccd() {
    // The Fig. 8a claim: QAOA and RCS are significantly better on TILT.
    for b in paper_suite() {
        if b.communication == tilt::benchmarks::CommunicationPattern::NearestNeighbor {
            let tilt32 = tilt_success(&b.circuit, 32);
            let qccd = qccd_best_success(&b.circuit);
            assert!(
                tilt32 > qccd,
                "{}: TILT-32 {tilt32} should beat QCCD {qccd}",
                b.name
            );
        }
    }
}

#[test]
fn qft_favors_qccd_over_tilt16() {
    // The Fig. 8b claim: long-distance QFT is where QCCD wins.
    let qft = tilt::benchmarks::qft::qft64();
    let tilt16 = tilt_success(&qft, 16);
    let qccd = qccd_best_success(&qft);
    assert!(
        qccd > tilt16,
        "QCCD {qccd} should beat TILT-16 {tilt16} on QFT"
    );
}

#[test]
fn short_distance_apps_are_comparable_across_architectures() {
    // The Fig. 8a claim for ADDER/BV: "TILT has the same performance as
    // QCCD" — within a small factor, neither collapses.
    for b in paper_suite() {
        if matches!(
            b.communication,
            tilt::benchmarks::CommunicationPattern::ShortDistance
        ) || b.name == "BV"
        {
            let tilt16 = tilt_success(&b.circuit, 16);
            let qccd = qccd_best_success(&b.circuit);
            let ratio = tilt16 / qccd;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "{}: TILT-16/QCCD ratio {ratio} outside comparable band",
                b.name
            );
        }
    }
}

#[test]
fn transports_scale_with_communication_distance() {
    // All-pairs QFT must transport far more than the nearest-neighbour
    // ADDER. (BV is *not* a good proxy despite being long-distance: its
    // single ancilla migrates once per trap and gets reused, which is
    // exactly the QCCD behaviour Fig. 8a shows for BV.)
    let native_qft = decompose(&tilt::benchmarks::qft::qft64());
    let native_adder = decompose(&tilt::benchmarks::adder::adder64());
    let spec = QccdSpec::for_qubits(64, 17).unwrap();
    let qft = compile_qccd(&native_qft, &spec).unwrap();
    let adder = compile_qccd(&native_adder, &spec).unwrap();
    assert!(
        qft.transport_count() > 10 * adder.transport_count(),
        "all-pairs QFT ({}) should transport far more than local ADDER ({})",
        qft.transport_count(),
        adder.transport_count()
    );
}
