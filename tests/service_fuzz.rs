//! Fuzz properties for the `tilt serve` wire protocol: arbitrary
//! bytes, JSON-shaped token soup, pathologically nested documents, and
//! truncated valid requests must never panic the loop — every
//! non-empty input line gets exactly one structured response line, and
//! every response line is itself valid JSON.

use proptest::prelude::*;
use std::io::Cursor;
use tilt::compiler::DeviceSpec;
use tilt::engine::{Backend, Engine, Service, ShutdownCause};
use tilt::report::Json;

/// Serves `input` through a fresh loop, returning the response lines.
/// Panics (failing the property) only if the serve loop itself fails —
/// malformed input must surface as error *responses*, not errors here.
fn serve_lines(input: String) -> Vec<String> {
    let mut service =
        Service::new(Engine::builder().backend(Backend::Tilt(DeviceSpec::new(8, 4).unwrap())))
            .unwrap();
    let mut out = Vec::new();
    let summary = service.serve(Cursor::new(input), &mut out, None).unwrap();
    assert_eq!(summary.cause, ShutdownCause::Eof);
    String::from_utf8(out)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect()
}

/// One response per non-empty request line, each parseable and tagged
/// with an `ok` verdict; error responses carry the structured
/// `{kind, message}` object.
fn assert_wire_contract(request_lines: &[String], responses: &[String]) {
    let expected = request_lines
        .iter()
        .filter(|l| !l.trim().is_empty())
        .count();
    assert_eq!(
        responses.len(),
        expected,
        "one response per non-empty line: {request_lines:?}"
    );
    for line in responses {
        let resp = Json::parse(line).expect("every response line is valid JSON");
        match resp.get("ok") {
            Some(&Json::Bool(true)) => {}
            Some(&Json::Bool(false)) => {
                let error = resp.get("error").expect("error responses carry `error`");
                assert!(error.get("kind").is_some_and(|k| k.as_str().is_some()));
                assert!(error.get("message").is_some_and(|m| m.as_str().is_some()));
            }
            other => panic!("response without boolean `ok`: {other:?} in {line}"),
        }
    }
}

/// Strips bytes that would split one fuzz "line" into several.
fn one_line(s: &str) -> String {
    s.replace(['\n', '\r'], " ")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary printable garbage: the loop answers every line with
    /// one structured error (or, improbably, a success) and survives.
    #[test]
    fn arbitrary_lines_each_get_one_structured_response(
        lines in prop::collection::vec(".{0,120}", 1..5)
    ) {
        let lines: Vec<String> = lines.iter().map(|l| one_line(l)).collect();
        let input = lines.iter().map(|l| l.clone() + "\n").collect::<String>();
        let responses = serve_lines(input);
        assert_wire_contract(&lines, &responses);
    }

    /// JSON-shaped token soup — braces, quotes, protocol field names,
    /// colons — biased to tickle the request parser's edge cases.
    #[test]
    fn json_token_soup_never_kills_the_loop(
        tokens in prop::collection::vec(
            prop_oneof![
                Just("{".to_string()),
                Just("}".to_string()),
                Just("[".to_string()),
                Just("]".to_string()),
                Just(":".to_string()),
                Just(",".to_string()),
                Just("\"".to_string()),
                Just("\"id\"".to_string()),
                Just("\"qasm\"".to_string()),
                Just("\"op\"".to_string()),
                Just("\"run\"".to_string()),
                Just("\"stats\"".to_string()),
                Just("\"deadline_ms\"".to_string()),
                Just("\"backend\"".to_string()),
                Just("\"method\"".to_string()),
                Just("\"stabilizer\"".to_string()),
                Just("null".to_string()),
                Just("true".to_string()),
                Just("-0".to_string()),
                Just("1e308".to_string()),
                Just("\\u0000".to_string()),
                "[a-z0-9]{1,4}".prop_map(|s| s),
            ],
            0..24,
        )
    ) {
        let line = tokens.concat();
        let lines = vec![one_line(&line)];
        let input = lines[0].clone() + "\n";
        let responses = serve_lines(input);
        assert_wire_contract(&lines, &responses);
    }

    /// Pathological nesting: the request parser's depth guard must
    /// reject a thousand-deep document with a structured error, never
    /// a stack overflow.
    #[test]
    fn deeply_nested_json_is_rejected_structurally(
        depth in 1usize..1024,
        array in 0u8..2,
    ) {
        let line = if array == 1 {
            format!("{}1{}", "[".repeat(depth), "]".repeat(depth))
        } else {
            format!("{}\"k\":1{}", "{\"k\":".repeat(depth), "}".repeat(depth))
        };
        let lines = vec![line.clone()];
        let responses = serve_lines(line + "\n");
        assert_wire_contract(&lines, &responses);
    }

    /// Truncating a valid request at any byte boundary yields at most
    /// one structured response and never a panic — a torn line is the
    /// normal failure mode of a dying client.
    #[test]
    fn truncated_requests_fail_structurally(cut in 0usize..90) {
        let full = "{\"id\":7,\"qasm\":\"qreg q[4];\\nh q[0];\\ncx q[0], q[3];\\n\",\"deadline_ms\":60000}";
        let line = full[..cut.min(full.len())].to_string();
        let lines = vec![line.clone()];
        let responses = serve_lines(line + "\n");
        assert_wire_contract(&lines, &responses);
    }

    /// Random gate programs forced onto the stabilizer simulator: a
    /// request either succeeds (the program happened to be Clifford) or
    /// fails with the dedicated `non_clifford` kind — never `internal`,
    /// which is reserved for bugs.
    #[test]
    fn forced_stabilizer_requests_never_fail_internally(
        gates in prop::collection::vec(0usize..6, 1..12),
    ) {
        let body: String = gates
            .iter()
            .enumerate()
            .map(|(i, &g)| match g {
                0 => format!("h q[{}];\\n", i % 4),
                1 => format!("t q[{}];\\n", i % 4),
                2 => format!("s q[{}];\\n", i % 4),
                3 => format!("cx q[{}], q[{}];\\n", i % 4, (i + 1) % 4),
                4 => format!("rz(0.3) q[{}];\\n", i % 4),
                _ => format!("rz(pi/2) q[{}];\\n", i % 4),
            })
            .collect();
        let line = format!(
            "{{\"id\":1,\"method\":\"stabilizer\",\"qasm\":\"qreg q[4];\\n{body}\"}}"
        );
        let responses = serve_lines(line.clone() + "\n");
        assert_wire_contract(&[line], &responses);
        let resp = Json::parse(&responses[0]).unwrap();
        if resp.get("ok") == Some(&Json::Bool(false)) {
            let kind = resp
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str)
                .unwrap();
            assert_eq!(kind, "non_clifford", "{resp:?}");
        }
    }
}
