//! Integration pins for the `tilt serve` wire protocol.
//!
//! The acceptance bar for the service: responses byte-identical to
//! [`Engine::run`] on the same circuits (program text, `ln_success`,
//! `exec_time_us` — the JSON writer renders `f64` shortest-round-trip,
//! so exact bit equality survives the wire), ≥ 1000 streamed requests
//! through one service with window-sized (not batch-sized) buffering,
//! and structured error responses for every per-request failure mode.

use std::io::Cursor;
use tilt::circuit::qasm;
use tilt::compiler::DeviceSpec;
use tilt::engine::{Backend, Engine, Service, ShutdownCause};
use tilt::report::Json;

const IONS: usize = 8;
const HEAD: usize = 4;

fn builder() -> tilt::engine::EngineBuilder {
    Engine::builder().backend(Backend::Tilt(DeviceSpec::new(IONS, HEAD).unwrap()))
}

/// The k-th workload circuit as QASM (mixed shapes, all ≤ 8 qubits).
fn workload_qasm(k: usize) -> String {
    match k % 3 {
        0 => format!(
            "qreg q[8];\nh q[0];\ncx q[0], q[{}];\ncx q[1], q[{}];\n",
            1 + k % 7,
            2 + k % 6
        ),
        1 => format!("qreg q[8];\ncx q[{}], q[7];\nmeasure q[7];\n", k % 7),
        _ => format!("qreg q[6];\nh q[2];\ncp(0.{}) q[0], q[5];\n", 1 + k % 8),
    }
}

fn drive(service: &mut Service, input: String) -> (Vec<Json>, tilt::engine::ServiceSummary) {
    let mut out = Vec::new();
    let summary = service.serve(Cursor::new(input), &mut out, None).unwrap();
    let text = String::from_utf8(out).unwrap();
    let responses = text
        .lines()
        .map(|l| Json::parse(l).expect("every response line parses"))
        .collect();
    (responses, summary)
}

#[test]
fn thousand_streamed_requests_match_engine_run_byte_for_byte() {
    const N: usize = 1000;
    const WINDOW: usize = 16;

    let mut input = String::new();
    for k in 0..N {
        let qasm_text = workload_qasm(k).replace('\n', "\\n");
        input.push_str(&format!(
            "{{\"id\":{k},\"qasm\":\"{qasm_text}\",\"emit_program\":true}}\n"
        ));
    }

    let mut service = Service::new(builder()).unwrap().with_window(WINDOW);
    let (responses, summary) = drive(&mut service, input);
    assert_eq!(responses.len(), N);
    assert_eq!(summary.cause, ShutdownCause::Eof);
    assert_eq!(summary.stats.served as usize, N);
    assert_eq!(summary.stats.errors, 0);
    // Bounded buffering: the high-water mark is the window, not the
    // thousand-request stream.
    assert!(
        summary.stats.max_in_flight <= WINDOW,
        "buffered {} requests with a window of {WINDOW}",
        summary.stats.max_in_flight
    );

    let engine = builder().build().unwrap();
    for (k, resp) in responses.iter().enumerate() {
        // Submission order survives the windowed fan-out.
        assert_eq!(resp.get("id").unwrap().as_f64(), Some(k as f64), "row {k}");
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "row {k}: {resp:?}");

        let circuit = qasm::parse_qasm(&workload_qasm(k)).unwrap();
        let report = engine.run(&circuit).unwrap();
        // f64s render shortest-round-trip: parsing the wire value back
        // must reproduce the session-API bits exactly.
        assert_eq!(
            resp.get("ln_success").unwrap().as_f64(),
            Some(report.ln_success),
            "row {k}"
        );
        assert_eq!(
            resp.get("exec_time_us").unwrap().as_f64(),
            Some(report.exec_time_us),
            "row {k}"
        );
        assert_eq!(
            resp.get("program").unwrap().as_str(),
            Some(report.tilt_program().unwrap().to_string().as_str()),
            "row {k}: scheduled programs must be byte-identical"
        );
    }
}

#[test]
fn every_error_path_yields_a_structured_response_without_killing_the_loop() {
    let ok_line = "{\"id\":\"probe\",\"qasm\":\"qreg q[4];\\ncx q[0], q[3];\\n\"}";
    let cases: [(&str, &str); 6] = [
        ("{not json", "malformed request"),
        ("[1,2,3]", "must be a JSON object"),
        (
            "{\"id\":\"bad-qasm\",\"qasm\":\"qreg q[2];\\nwat q[0];\\n\"}",
            "unknown gate `wat`",
        ),
        (
            "{\"id\":\"wide\",\"qasm\":\"qreg q[40];\\ncx q[0], q[39];\\n\"}",
            "needs 40 qubits",
        ),
        (
            "{\"id\":\"backend\",\"qasm\":\"qreg q[2];\\ncx q[0], q[1];\\n\",\"backend\":\"ibm\"}",
            "unknown backend `ibm`",
        ),
        (
            "{\"id\":\"no-qasm\",\"op\":\"run\"}",
            "needs a string `qasm` field",
        ),
    ];

    // Interleave every failure with a healthy request so survival is
    // pinned after each one.
    let mut input = String::new();
    for (bad, _) in &cases {
        input.push_str(bad);
        input.push('\n');
        input.push_str(ok_line);
        input.push('\n');
    }

    let mut service = Service::new(builder()).unwrap();
    let (responses, summary) = drive(&mut service, input);
    assert_eq!(responses.len(), cases.len() * 2);
    for (i, (_, needle)) in cases.iter().enumerate() {
        let err = &responses[2 * i];
        let ok = &responses[2 * i + 1];
        assert_eq!(err.get("ok"), Some(&Json::Bool(false)), "case {i}: {err:?}");
        let error = err.get("error").expect("error responses carry an object");
        assert!(
            error.get("kind").unwrap().as_str().is_some(),
            "case {i}: {err:?}"
        );
        assert!(
            error
                .get("message")
                .unwrap()
                .as_str()
                .unwrap()
                .contains(needle),
            "case {i}: {err:?}"
        );
        assert_eq!(ok.get("ok"), Some(&Json::Bool(true)), "case {i}: {ok:?}");
    }
    assert_eq!(summary.stats.errors as usize, cases.len());
    assert_eq!(summary.stats.ok as usize, cases.len());
}

#[test]
fn mid_stream_eof_drains_buffered_requests_cleanly() {
    // Requests below the window size, input ending without shutdown —
    // and the final line truncated mid-object. The loop must answer
    // the buffered circuits, answer the torn line with an error, and
    // exit cleanly.
    let input = "{\"id\":0,\"qasm\":\"qreg q[4];\\ncx q[0], q[3];\\n\"}\n\
                 {\"id\":1,\"qasm\":\"qreg q[4];\\ncx q[1], q[2];\\n\"}\n\
                 {\"id\":2,\"qasm\":\"qreg q[4];\\ncx q"
        .to_string();
    let mut service = Service::new(builder()).unwrap().with_window(64);
    let (responses, summary) = drive(&mut service, input);
    assert_eq!(summary.cause, ShutdownCause::Eof);
    assert_eq!(responses.len(), 3);
    // The torn line errors *before* the buffered window flushes — but
    // the flush-on-error rule keeps submission order: 0, 1, then the
    // error for the torn 2.
    assert_eq!(responses[0].get("id").unwrap().as_f64(), Some(0.0));
    assert_eq!(responses[1].get("id").unwrap().as_f64(), Some(1.0));
    assert_eq!(responses[2].get("ok"), Some(&Json::Bool(false)));
}

#[test]
fn per_request_overrides_match_dedicated_engines() {
    // A request overriding the scheduler must equal a one-off engine
    // built the same way — and must not disturb its session neighbours.
    // Ping-pong traffic between the tape ends: the greedy scheduler
    // batches per zone, the naive one shuttles per gate — different
    // move counts, so the override is observable.
    let qasm_text = "qreg q[8];\ncx q[0], q[1];\ncx q[6], q[7];\ncx q[0], q[1];\ncx q[6], q[7];\ncx q[0], q[1];\ncx q[6], q[7];\n";
    let wire = qasm_text.replace('\n', "\\n");
    let input = format!(
        "{{\"id\":0,\"qasm\":\"{wire}\"}}\n{{\"id\":1,\"qasm\":\"{wire}\",\"scheduler\":\"naive\"}}\n{{\"id\":2,\"qasm\":\"{wire}\"}}\n"
    );
    let mut service = Service::new(builder()).unwrap();
    let (responses, _) = drive(&mut service, input);
    assert_eq!(responses.len(), 3);

    let circuit = qasm::parse_qasm(qasm_text).unwrap();
    let session = builder().build().unwrap().run(&circuit).unwrap();
    let naive = builder()
        .scheduler(tilt::compiler::SchedulerKind::NaiveNextGate)
        .build()
        .unwrap()
        .run(&circuit)
        .unwrap();
    assert_ne!(session.compile.move_count, naive.compile.move_count);
    for (resp, expect) in [
        (&responses[0], &session),
        (&responses[1], &naive),
        (&responses[2], &session),
    ] {
        assert_eq!(
            resp.get("moves").unwrap().as_f64(),
            Some(expect.compile.move_count as f64),
            "{resp:?}"
        );
        assert_eq!(
            resp.get("ln_success").unwrap().as_f64(),
            Some(expect.ln_success),
            "{resp:?}"
        );
    }
}
