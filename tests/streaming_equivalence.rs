//! Decision-identity acceptance tests for the streaming compile
//! pipeline: at **every** window size, the windowed pipeline must be
//! byte-identical to the monolithic one — same program op stream (and
//! rendered program text), same final mapping, same `ln_success`, same
//! `exec_time_us` — across the TILT, scaled (sharded per-ELU), and
//! QCCD (buffered fallback) backends. A window that changed a routing
//! or scheduling decision would silently change the physics the
//! estimates model, so *any* divergence here is a bug, never a tuning
//! trade-off.

use proptest::prelude::*;
use tilt::benchmarks::qft::qft;
use tilt::benchmarks::stream::{qft_stream, rcs_stream};
use tilt::circuit::{qasm, Gate, Qubit};
use tilt::compiler::{CollectSink, TiltOp, TiltProgram};
use tilt::engine::{Backend, Engine};
use tilt::prelude::*;

/// The window sizes the acceptance criteria name: small (many windows),
/// large (a few), and whole-circuit (streaming degenerates to one
/// window).
const WINDOWS: [usize; 3] = [64, 1024, usize::MAX];

/// Collects `(shard, ops)` increments per shard.
#[derive(Default)]
struct ShardSink {
    shards: Vec<Vec<TiltOp>>,
    increments: usize,
}

impl tilt::engine::StreamSink for ShardSink {
    fn emit(&mut self, shard: usize, ops: &[TiltOp]) {
        if self.shards.len() <= shard {
            self.shards.resize_with(shard + 1, Vec::new);
        }
        self.shards[shard].extend_from_slice(ops);
        self.increments += 1;
    }
}

#[test]
fn tilt_streaming_is_byte_identical_at_every_window() {
    let circuit = qft(24);
    let spec = DeviceSpec::new(24, 8).unwrap();
    let engine = Engine::builder()
        .backend(Backend::Tilt(spec))
        .build()
        .unwrap();
    let mono = engine.run(&circuit).unwrap();
    let mono_program = mono.tilt_program().unwrap();

    for window in WINDOWS {
        let mut sink = ShardSink::default();
        let outcome = engine
            .run_streaming(
                circuit.n_qubits(),
                circuit.iter().copied(),
                window,
                &mut sink,
            )
            .unwrap();

        // Program byte-identity: the concatenated increments are the
        // monolithic op stream, and rendering them as a program yields
        // the identical text (header included).
        assert_eq!(sink.shards.len(), 1, "TILT is a single shard");
        assert_eq!(sink.shards[0], mono_program.ops(), "window {window}");
        let rebuilt = TiltProgram::new_unchecked(spec, sink.shards[0].clone());
        assert_eq!(rebuilt.to_string(), mono_program.to_string());
        // Sub-horizon circuits legally drain as one increment at EOF
        // (the scheduler's eligibility horizon is what bounds memory);
        // what must hold is that the engine's count matches the sink's.
        assert_eq!(outcome.increments, sink.increments);
        assert!(outcome.increments >= 1);

        // Estimate bit-identity.
        assert_eq!(outcome.ln_success.to_bits(), mono.ln_success.to_bits());
        assert_eq!(outcome.success.to_bits(), mono.success.to_bits());
        assert_eq!(outcome.exec_time_us.to_bits(), mono.exec_time_us.to_bits());
        assert_eq!(outcome.compile.swap_count, mono.compile.swap_count);
        assert_eq!(outcome.compile.move_count, mono.compile.move_count);
        assert_eq!(outcome.compile.move_distance, mono.compile.move_distance);
        assert_eq!(
            outcome.compile.native_gate_count,
            mono.compile.native_gate_count
        );
        assert_eq!(outcome.input_gate_count, circuit.len());
    }
}

#[test]
fn streaming_final_mapping_matches_the_monolithic_router() {
    let circuit = qft(20);
    let spec = DeviceSpec::new(20, 5).unwrap();
    let compiler = Compiler::new(spec);
    let mono = compiler.compile(&circuit).unwrap();
    for window in WINDOWS {
        let mut sink = CollectSink::default();
        let summary = compiler
            .compile_stream(
                circuit.n_qubits(),
                circuit.iter().copied(),
                window,
                &mut sink,
            )
            .unwrap();
        assert_eq!(
            summary.final_mapping, mono.routed.final_mapping,
            "window {window}"
        );
        assert_eq!(summary.initial_mapping, mono.routed.initial_mapping);
        assert_eq!(sink.ops, mono.program.ops());
    }
}

#[test]
fn scaled_streaming_matches_per_elu_programs_at_every_window() {
    // 16 qubits over 10-data-ion ELUs: qubits 7↔8 gates are remote, so
    // the EPR machinery is exercised, sharded across two ELUs.
    let mut c = Circuit::new(16);
    for i in 0..8 {
        c.h(Qubit(i));
    }
    for _ in 0..3 {
        c.cnot(Qubit(7), Qubit(8));
        c.cnot(Qubit(0), Qubit(1));
        c.cnot(Qubit(14), Qubit(15));
    }
    let spec = ScaleSpec::new(10, 4).unwrap();
    let engine = Engine::builder()
        .backend(Backend::Scaled(spec))
        .build()
        .unwrap();
    let mono = engine.run(&c).unwrap();
    let tilt::engine::RunDetail::Scaled { program, .. } = &mono.detail else {
        panic!("scaled backend produces scaled detail");
    };

    for window in WINDOWS {
        let mut sink = ShardSink::default();
        let outcome = engine
            .run_streaming(c.n_qubits(), c.iter().copied(), window, &mut sink)
            .unwrap();
        assert_eq!(sink.shards.len(), program.elu_outputs.len());
        for (e, out) in program.elu_outputs.iter().enumerate() {
            assert_eq!(
                sink.shards[e],
                out.program.ops(),
                "elu {e}, window {window}"
            );
        }
        assert_eq!(outcome.ln_success.to_bits(), mono.ln_success.to_bits());
        assert_eq!(outcome.exec_time_us.to_bits(), mono.exec_time_us.to_bits());
        assert_eq!(outcome.compile.epr_pairs, mono.compile.epr_pairs);
        assert!(outcome.compile.epr_pairs >= 3, "remote gates teleport");
    }
}

#[test]
fn qccd_streaming_fallback_matches_the_monolithic_run() {
    let mut c = Circuit::new(20);
    for i in 0..19 {
        c.cnot(Qubit(i), Qubit(i + 1));
    }
    let spec = QccdSpec::for_qubits(20, 17).unwrap();
    let engine = Engine::builder()
        .backend(Backend::Qccd(spec))
        .build()
        .unwrap();
    let mono = engine.run(&c).unwrap();
    for window in WINDOWS {
        let mut sink = ShardSink::default();
        let outcome = engine
            .run_streaming(c.n_qubits(), c.iter().copied(), window, &mut sink)
            .unwrap();
        assert_eq!(outcome.ln_success.to_bits(), mono.ln_success.to_bits());
        assert_eq!(outcome.exec_time_us.to_bits(), mono.exec_time_us.to_bits());
        // The QCCD path buffers (transport scheduling is whole-circuit);
        // it reports zero increments rather than pretending to stream.
        assert_eq!(outcome.increments, 0);
    }
}

#[test]
fn qasm_stream_path_matches_the_in_memory_gate_stream() {
    // Generator → streaming QASM writer → QasmStream reader → windowed
    // compile equals generator → windowed compile directly: the text
    // round trip inserts no decision drift.
    let n = 12;
    let mut text = Vec::new();
    qasm::write_qasm_stream(n, qft_stream(n), &mut text).unwrap();
    let spec = DeviceSpec::new(n, 4).unwrap();
    let engine = Engine::builder()
        .backend(Backend::Tilt(spec))
        .build()
        .unwrap();

    let mut direct = ShardSink::default();
    let direct_outcome = engine
        .run_streaming(n, qft_stream(n), 64, &mut direct)
        .unwrap();
    let mut via_qasm = ShardSink::default();
    let qasm_outcome = engine
        .run_streaming_qasm(text.as_slice(), 64, &mut via_qasm)
        .unwrap();

    assert_eq!(direct.shards, via_qasm.shards);
    assert_eq!(
        direct_outcome.ln_success.to_bits(),
        qasm_outcome.ln_success.to_bits()
    );
    assert_eq!(
        direct_outcome.exec_time_us.to_bits(),
        qasm_outcome.exec_time_us.to_bits()
    );
    assert_eq!(
        direct_outcome.input_gate_count,
        qasm_outcome.input_gate_count
    );
}

#[test]
fn deep_rcs_stream_compiles_in_bounded_windows() {
    // A deep streamed workload (never materialized as a Circuit) agrees
    // with the materialized compile of the same gate sequence.
    let (rows, cols, cycles, seed) = (4, 4, 40, 11);
    let circuit = Circuit::from_gates(rows * cols, rcs_stream(rows, cols, cycles, seed));
    let spec = DeviceSpec::new(rows * cols, 4).unwrap();
    let engine = Engine::builder()
        .backend(Backend::Tilt(spec))
        .build()
        .unwrap();
    let mono = engine.run(&circuit).unwrap();
    let mut sink = ShardSink::default();
    let outcome = engine
        .run_streaming(
            rows * cols,
            rcs_stream(rows, cols, cycles, seed),
            128,
            &mut sink,
        )
        .unwrap();
    assert_eq!(sink.shards[0], mono.tilt_program().unwrap().ops());
    assert_eq!(outcome.ln_success.to_bits(), mono.ln_success.to_bits());
    assert_eq!(outcome.input_gate_count, circuit.len());
}

/// Random program-level gate on `n` qubits.
fn gate_strategy(n: usize) -> impl Strategy<Value = Gate> {
    prop_oneof![
        (0..n).prop_map(|q| Gate::H(Qubit(q))),
        (0..n).prop_map(|q| Gate::T(Qubit(q))),
        (0..n, 0..n).prop_map(move |(a, b)| {
            if a == b {
                Gate::Rz(Qubit(a), 0.4)
            } else {
                Gate::Cnot(Qubit(a), Qubit(b))
            }
        }),
        (0..n, 0..n).prop_map(move |(a, b)| {
            if a == b {
                Gate::Rx(Qubit(a), 0.9)
            } else {
                Gate::Cz(Qubit(a), Qubit(b))
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random circuits × random window boundaries: the streamed op
    /// stream and estimates always equal the monolithic run's.
    #[test]
    fn random_circuits_stream_identically_at_random_windows(
        gates in prop::collection::vec(gate_strategy(12), 1..160),
        window in 1usize..200,
    ) {
        let circuit = Circuit::from_gates(12, gates);
        let spec = DeviceSpec::new(12, 4).unwrap();
        let engine = Engine::builder().backend(Backend::Tilt(spec)).build().unwrap();
        let mono = engine.run(&circuit).unwrap();
        let mut sink = ShardSink::default();
        let outcome = engine
            .run_streaming(12, circuit.iter().copied(), window, &mut sink)
            .unwrap();
        prop_assert_eq!(&sink.shards[0], mono.tilt_program().unwrap().ops());
        prop_assert_eq!(outcome.ln_success.to_bits(), mono.ln_success.to_bits());
        prop_assert_eq!(outcome.exec_time_us.to_bits(), mono.exec_time_us.to_bits());
        prop_assert_eq!(outcome.compile.swap_count, mono.compile.swap_count);
        prop_assert_eq!(outcome.compile.move_count, mono.compile.move_count);
    }
}
