//! Property tests pinning the incremental and bound-pruned Algorithm-2
//! engines to the retained seed rescan engine.
//!
//! Random already-routed circuits (every two-qubit gate fits under the
//! head) run through all three engines for every Eq. 2 policy; the
//! resulting programs must be identical op-for-op — same move sequence,
//! same head positions, same executed-gate order. A second property
//! routes random *unrouted* circuits through the full compiler first,
//! so the engines are also compared on realistic swap-laden gate
//! streams.

use proptest::prelude::*;
use tilt::circuit::{Circuit, Gate, Qubit};
use tilt::compiler::schedule::{schedule_with, ScheduleConfig, SchedulerKind};
use tilt::compiler::{Compiler, DeviceSpec, InitialMapping};

/// Device shapes worth covering: narrow and wide heads, few and many
/// head positions.
fn spec_strategy() -> impl Strategy<Value = DeviceSpec> {
    prop_oneof![
        Just(DeviceSpec::new(16, 4).unwrap()),
        Just(DeviceSpec::new(24, 6).unwrap()),
        Just(DeviceSpec::new(32, 8).unwrap()),
        Just(DeviceSpec::new(12, 12).unwrap()),
    ]
}

fn kind_strategy() -> impl Strategy<Value = SchedulerKind> {
    prop_oneof![
        Just(SchedulerKind::GreedyMaxExecutable),
        (1u32..3000)
            .prop_map(|penalty_permille| SchedulerKind::DistanceDiscounted { penalty_permille }),
    ]
}

/// A random *routed* circuit on `spec`: all two-qubit spans stay under
/// the head, with single-qubit gates and barriers mixed in.
fn routed_circuit_strategy(spec: DeviceSpec) -> impl Strategy<Value = Circuit> {
    let n = spec.n_ions();
    let head = spec.head_size();
    let two_q = move |(a, d): (usize, usize)| {
        let b = if a + d < n { a + d } else { a - d.min(a) };
        if a == b {
            Gate::Rx(Qubit(a), 0.3)
        } else {
            Gate::Xx(Qubit(a), Qubit(b), 0.4)
        }
    };
    // The shim's `prop_oneof!` is unweighted; repeat the two-qubit arm
    // to keep the stream dominated by schedulable gate traffic.
    let gate = prop_oneof![
        (0..n, 1..head).prop_map(two_q),
        (0..n, 1..head).prop_map(two_q),
        (0..n, 1..head).prop_map(two_q),
        (0..n, 1..head).prop_map(two_q),
        (0..n).prop_map(|q| Gate::Rz(Qubit(q), 0.7)),
        (0..n).prop_map(|q| Gate::Rz(Qubit(q), 0.7)),
        Just(Gate::Barrier),
    ];
    prop::collection::vec(gate, 1..120).prop_map(move |gates| Circuit::from_gates(n, gates))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The bound-pruned (default), unpruned incremental, and rescan
    /// engines produce identical programs on random routed circuits
    /// under every Eq. 2 policy.
    #[test]
    fn engines_agree_on_random_circuits(
        (spec, circuit) in spec_strategy().prop_flat_map(|s| (Just(s), routed_circuit_strategy(s))),
        kind in kind_strategy(),
    ) {
        let pruned = schedule_with(&circuit, spec, ScheduleConfig::new(kind));
        let unpruned = schedule_with(&circuit, spec, ScheduleConfig::unpruned(kind));
        let slow = schedule_with(&circuit, spec, ScheduleConfig::rescan(kind));
        prop_assert_eq!(
            &unpruned, &slow,
            "incremental engine diverged for {:?} on:\n{}", kind, circuit
        );
        prop_assert_eq!(
            &pruned, &slow,
            "bound-pruned engine diverged for {:?} on:\n{}", kind, circuit
        );
        // Belt and braces on the two halves the equality covers: the
        // move sequence and the executed-gate order.
        let moves = |p: &tilt::compiler::TiltProgram| -> Vec<usize> {
            p.ops().iter().filter_map(|op| match op {
                tilt::compiler::TiltOp::Move { to } => Some(*to),
                _ => None,
            }).collect()
        };
        prop_assert_eq!(moves(&pruned), moves(&slow));
        prop_assert_eq!(moves(&unpruned), moves(&slow));
        let order_pruned: Vec<&Gate> = pruned.gates().map(|(g, _)| g).collect();
        let order_slow: Vec<&Gate> = slow.gates().map(|(g, _)| g).collect();
        prop_assert_eq!(order_pruned, order_slow);
    }

    /// Same comparison after real routing: random long-range circuits
    /// go through decomposition and LinQ swap insertion, then all three
    /// engines schedule the lowered stream.
    #[test]
    fn engines_agree_after_routing(
        pairs in prop::collection::vec((0usize..24, 0usize..24, 1u32..3), 1..25),
        kind in kind_strategy(),
    ) {
        let spec = DeviceSpec::new(24, 6).unwrap();
        let mut c = Circuit::new(24);
        for (a, b, kind_sel) in pairs {
            if a == b {
                c.rz(Qubit(a), 0.4);
            } else if kind_sel == 1 {
                c.cnot(Qubit(a), Qubit(b));
            } else {
                c.xx(Qubit(a), Qubit(b), 0.9);
            }
        }
        let native = tilt::compiler::decompose::decompose(&c);
        let initial = InitialMapping::Identity.build(&native, spec.n_ions());
        let routed = tilt::compiler::RouterKind::default()
            .route(&native, spec, &initial)
            .expect("random circuits on 24 ions route");
        let lowered = tilt::compiler::decompose::decompose(&routed.circuit);
        let pruned = schedule_with(&lowered, spec, ScheduleConfig::new(kind));
        let unpruned = schedule_with(&lowered, spec, ScheduleConfig::unpruned(kind));
        let slow = schedule_with(&lowered, spec, ScheduleConfig::rescan(kind));
        prop_assert_eq!(&unpruned, &slow, "incremental engine diverged for {:?}", kind);
        prop_assert_eq!(&pruned, &slow, "bound-pruned engine diverged for {:?}", kind);
    }
}

/// The compiler pipeline (which defaults to the bound-pruned
/// incremental engine) still produces programs the rescan engine
/// agrees with end to end.
#[test]
fn pipeline_schedule_is_engine_independent() {
    let mut c = Circuit::new(32);
    for i in 0..16 {
        c.cnot(Qubit(i), Qubit(31 - i));
    }
    let spec = DeviceSpec::new(32, 8).unwrap();
    let out = Compiler::new(spec).compile(&c).expect("compiles");
    let lowered = tilt::compiler::decompose::decompose(&out.routed.circuit);
    let rescan = schedule_with(
        &lowered,
        spec,
        ScheduleConfig::rescan(SchedulerKind::GreedyMaxExecutable),
    );
    assert_eq!(out.program, rescan);
}
