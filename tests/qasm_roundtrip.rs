//! Property test: the QASM emitter and parser are inverse on the IR's
//! full gate set (f64 `Display` is shortest-round-trip, so angles survive
//! the text round trip exactly).
//!
//! The parser canonicalizes angles through
//! `clifford::normalize_angle` (wrap into `(-π, π]`, snap to the π/4
//! grid), so the identity holds on circuits whose angles are already
//! canonical — the strategy below normalizes its draws, and a separate
//! case pins that non-canonical spellings converge to the same circuit.

use proptest::prelude::*;
use tilt::circuit::{qasm, Circuit, Gate, Qubit};

fn gate_strategy(n: usize) -> impl Strategy<Value = Gate> {
    let q = move || (0..n).prop_map(Qubit);
    let pair = move || {
        (0..n, 0..n)
            .prop_filter("distinct", |(a, b)| a != b)
            .prop_map(|(a, b)| (Qubit(a), Qubit(b)))
    };
    let triple = move || {
        (0..n, 0..n, 0..n)
            .prop_filter("distinct", |(a, b, c)| a != b && b != c && a != c)
            .prop_map(|(a, b, c)| (Qubit(a), Qubit(b), Qubit(c)))
    };
    let angle = || (-10.0f64..10.0).prop_map(tilt::circuit::clifford::normalize_angle);
    prop_oneof![
        q().prop_map(Gate::H),
        q().prop_map(Gate::X),
        q().prop_map(Gate::Y),
        q().prop_map(Gate::Z),
        q().prop_map(Gate::S),
        q().prop_map(Gate::Sdg),
        q().prop_map(Gate::T),
        q().prop_map(Gate::Tdg),
        q().prop_map(Gate::SqrtX),
        q().prop_map(Gate::SqrtY),
        (q(), angle()).prop_map(|(q, a)| Gate::Rx(q, a)),
        (q(), angle()).prop_map(|(q, a)| Gate::Ry(q, a)),
        (q(), angle()).prop_map(|(q, a)| Gate::Rz(q, a)),
        pair().prop_map(|(a, b)| Gate::Cnot(a, b)),
        pair().prop_map(|(a, b)| Gate::Cz(a, b)),
        (pair(), angle()).prop_map(|((a, b), t)| Gate::Cphase(a, b, t)),
        (pair(), angle()).prop_map(|((a, b), t)| Gate::Zz(a, b, t)),
        (pair(), angle()).prop_map(|((a, b), t)| Gate::Xx(a, b, t)),
        pair().prop_map(|(a, b)| Gate::Swap(a, b)),
        triple().prop_map(|(a, b, c)| Gate::Toffoli(a, b, c)),
        q().prop_map(Gate::Measure),
        q().prop_map(Gate::Reset),
        Just(Gate::Barrier),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn emit_then_parse_is_identity(
        n in 1usize..12,
        gates in prop::collection::vec((0usize..1).prop_flat_map(|_| gate_strategy(12)), 0..30),
    ) {
        // Clamp operands into range for the chosen register width.
        let gates: Vec<Gate> = gates
            .into_iter()
            .map(|g| g.map_qubits(|q| Qubit(q.index() % n)))
            .filter(|g| {
                // map_qubits can collapse distinct operands; drop those.
                let qs = g.qubits();
                qs.iter().collect::<std::collections::HashSet<_>>().len() == qs.len()
            })
            .collect();
        let circuit = Circuit::from_gates(n, gates);
        let text = qasm::to_qasm(&circuit);
        let parsed = qasm::parse_qasm(&text).expect("emitter output parses");
        prop_assert_eq!(parsed, circuit);
    }

    /// Non-canonical angles converge: emitting a circuit with wrapped
    /// angles and re-parsing yields the normalized circuit, and parsing
    /// it twice is a fixed point.
    #[test]
    fn parse_normalizes_to_a_fixed_point(
        n in 1usize..8,
        raw in prop::collection::vec((-20.0f64..20.0, 0usize..8), 1..12),
    ) {
        let mut c = Circuit::new(n);
        for (angle, q) in raw {
            c.rz(Qubit(q % n), angle);
        }
        let once = qasm::parse_qasm(&qasm::to_qasm(&c)).expect("parses");
        let twice = qasm::parse_qasm(&qasm::to_qasm(&once)).expect("parses");
        prop_assert_eq!(&twice, &once);
        for (g, h) in c.gates().iter().zip(once.gates()) {
            match (g, h) {
                (Gate::Rz(_, a), Gate::Rz(_, b)) => {
                    prop_assert_eq!(tilt::circuit::clifford::normalize_angle(*a), *b);
                }
                other => panic!("unexpected gate pair {other:?}"),
            }
        }
    }
}
