//! Acceptance tests for the content-addressed compile cache: cached
//! results must be **byte-identical** to fresh compiles on every
//! backend, the cache key must be sensitive to every configuration
//! knob, the LRU bound must evict in recency order, and a corrupted
//! `--cache-dir` snapshot must degrade to a cold start — never to a
//! wrong response.

use std::io::Cursor;
use std::sync::Arc;
use tilt::benchmarks::qaoa::qaoa_maxcut;
use tilt::circuit::qasm;
use tilt::engine::{Backend, CompileCache, Engine, EngineBuilder, Service};
use tilt::prelude::*;
use tilt::report::Json;
use tilt::sim::{CoolingPolicy, ExecTimeModel};
use tilt_compiler::route::LinqConfig;
use tilt_compiler::InitialMapping;

fn ghz(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.h(Qubit(0));
    for i in 1..n {
        c.cnot(Qubit(i - 1), Qubit(i));
    }
    c
}

fn cached(builder: EngineBuilder, capacity: usize) -> (Engine, Arc<CompileCache>) {
    let cache = Arc::new(CompileCache::new(capacity));
    let engine = builder.compile_cache(Arc::clone(&cache)).build().unwrap();
    (engine, cache)
}

/// A scratch directory unique to one test (plain std, no tempfile dep).
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tilt-compile-cache-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Cached reruns are byte-identical to fresh compiles on all three
/// backends: same program text, bit-identical ln_success / success /
/// exec_time_us, same compile statistics.
#[test]
fn cached_rerun_is_byte_identical_on_every_backend() {
    let circuit = qaoa_maxcut(16, 2, 7);
    let backends = [
        Backend::Tilt(DeviceSpec::new(16, 4).unwrap()),
        Backend::Qccd(QccdSpec::for_qubits(16, 5).unwrap()),
        Backend::Scaled(ScaleSpec::new(10, 4).unwrap()),
    ];
    for backend in backends {
        let fresh = Engine::builder()
            .backend(backend)
            .build()
            .unwrap()
            .run(&circuit)
            .unwrap();
        let (engine, cache) = cached(Engine::builder().backend(backend), 16);
        let miss = engine.run(&circuit).unwrap();
        let hit = engine.run(&circuit).unwrap();
        let counters = cache.counters();
        assert_eq!(counters.misses, 1, "{backend:?}");
        assert_eq!(counters.hits, 1, "{backend:?}");
        assert_eq!(counters.entries, 1, "{backend:?}");

        for report in [&miss, &hit] {
            assert_eq!(report.backend, fresh.backend, "{backend:?}");
            assert_eq!(
                report.ln_success.to_bits(),
                fresh.ln_success.to_bits(),
                "{backend:?}"
            );
            assert_eq!(
                report.success.to_bits(),
                fresh.success.to_bits(),
                "{backend:?}"
            );
            assert_eq!(
                report.exec_time_us.to_bits(),
                fresh.exec_time_us.to_bits(),
                "{backend:?}"
            );
            assert_eq!(report.compile.swap_count, fresh.compile.swap_count);
            assert_eq!(report.compile.move_count, fresh.compile.move_count);
            assert_eq!(
                report.compile.native_gate_count,
                fresh.compile.native_gate_count
            );
            assert_eq!(report.compile.epr_pairs, fresh.compile.epr_pairs);
            // The full program artifact survives the cache (TILT text
            // pinned byte-for-byte; the other backends carry their own
            // artifacts in the detail).
            match (report.tilt_program(), fresh.tilt_program()) {
                (Some(a), Some(b)) => assert_eq!(a.to_string(), b.to_string()),
                (None, None) => {}
                other => panic!("artifact mismatch: {other:?}"),
            }
        }
    }
}

/// Every configuration knob must land in the fingerprint: flipping any
/// one of them produces a distinct config, so stale hits are impossible.
#[test]
fn config_fingerprint_is_sensitive_to_every_knob() {
    let tilt = |spec| Engine::builder().backend(Backend::Tilt(spec));
    let spec = DeviceSpec::new(16, 8).unwrap();
    let base = tilt(spec).build().unwrap().config_fingerprint();

    let noisier = NoiseModel {
        epsilon: 2e-4,
        ..NoiseModel::default()
    };
    let slower = GateTimeModel {
        single_qubit_us: 12.0,
        ..GateTimeModel::default()
    };
    let wider_spacing = ExecTimeModel {
        ion_spacing_um: 6.0,
        ..ExecTimeModel::default()
    };
    let variants: Vec<Engine> = vec![
        tilt(DeviceSpec::new(17, 8).unwrap()).build().unwrap(),
        tilt(DeviceSpec::new(16, 4).unwrap()).build().unwrap(),
        tilt(spec)
            .router(RouterKind::Linq(LinqConfig::with_max_swap_len(5)))
            .build()
            .unwrap(),
        tilt(spec)
            .router(RouterKind::Linq(LinqConfig {
                alpha: 0.5,
                ..LinqConfig::default()
            }))
            .build()
            .unwrap(),
        tilt(spec)
            .router(RouterKind::Stochastic(Default::default()))
            .build()
            .unwrap(),
        tilt(spec)
            .scheduler(SchedulerKind::NaiveNextGate)
            .build()
            .unwrap(),
        tilt(spec)
            .initial_mapping(InitialMapping::Reverse)
            .build()
            .unwrap(),
        tilt(spec).noise(noisier).build().unwrap(),
        tilt(spec).gate_times(slower).build().unwrap(),
        tilt(spec).exec_time(wider_spacing).build().unwrap(),
        tilt(spec)
            .cooling(CoolingPolicy::threshold(2.0))
            .build()
            .unwrap(),
        Engine::builder()
            .backend(Backend::Qccd(QccdSpec::for_qubits(16, 5).unwrap()))
            .build()
            .unwrap(),
        Engine::builder()
            .backend(Backend::Scaled(ScaleSpec::new(10, 4).unwrap()))
            .build()
            .unwrap(),
        Engine::builder()
            .backend(Backend::Scaled(
                ScaleSpec::new(10, 4)
                    .unwrap()
                    .with_scheduler(SchedulerKind::NaiveNextGate),
            ))
            .build()
            .unwrap(),
    ];
    let mut fps = vec![base];
    for engine in &variants {
        fps.push(engine.config_fingerprint());
    }
    for i in 0..fps.len() {
        for j in i + 1..fps.len() {
            assert_ne!(fps[i], fps[j], "variants {i} and {j} collide");
        }
    }
    // And the builder path is deterministic: an identical rebuild
    // fingerprints identically.
    assert_eq!(base, tilt(spec).build().unwrap().config_fingerprint());
}

/// A capacity-2 cache evicts in LRU order under engine traffic.
#[test]
fn lru_evicts_least_recently_used_circuit() {
    let (engine, cache) = cached(
        Engine::builder().backend(Backend::Tilt(DeviceSpec::new(12, 4).unwrap())),
        2,
    );
    let (c1, c2, c3) = (ghz(4), ghz(8), ghz(12));
    engine.run(&c1).unwrap(); // miss → {1, 2 empty}
    engine.run(&c2).unwrap(); // miss → {1, 2}
    engine.run(&c1).unwrap(); // hit: 1 becomes most-recent
    engine.run(&c3).unwrap(); // miss → evicts 2 (LRU) → {1, 3}
    engine.run(&c2).unwrap(); // miss again → evicts 1 → {3, 2}
    engine.run(&c3).unwrap(); // hit: 3 survived
    engine.run(&c1).unwrap(); // miss: 1 was evicted

    let c = cache.counters();
    assert_eq!(c.hits, 2, "c1 touch + c3 after eviction round");
    assert_eq!(c.misses, 5);
    assert_eq!(c.evictions, 3);
    assert_eq!(c.entries, 2);
}

/// `run_batch` shares the session cache: a duplicate-heavy batch
/// compiles each distinct circuit once (modulo in-flight races) and
/// stays byte-identical to per-circuit runs.
#[test]
fn batch_workers_share_the_cache() {
    let (engine, cache) = cached(
        Engine::builder().backend(Backend::Tilt(DeviceSpec::new(12, 4).unwrap())),
        64,
    );
    let circuits: Vec<Circuit> = (0..40).map(|k| ghz(4 + (k % 3) * 4)).collect();
    let reports = engine.run_batch(circuits.clone());
    let counters = cache.counters();
    assert_eq!(counters.entries, 3, "three distinct circuits");
    assert!(
        counters.hits >= 1,
        "duplicates within the batch must hit: {counters:?}"
    );
    assert_eq!(counters.hits + counters.misses, 40);
    for (c, r) in circuits.iter().zip(&reports) {
        let single = engine.run(c).unwrap();
        let r = r.as_ref().unwrap();
        assert_eq!(
            r.tilt_program().unwrap().to_string(),
            single.tilt_program().unwrap().to_string()
        );
        assert_eq!(r.ln_success.to_bits(), single.ln_success.to_bits());
        assert_eq!(r.exec_time_us.to_bits(), single.exec_time_us.to_bits());
    }
}

/// Service responses served from a snapshot restored by `load` are
/// byte-identical to fresh responses, and tampered snapshot lines are
/// rejected individually.
#[test]
fn persisted_cache_round_trips_and_rejects_corruption() {
    let dir = scratch_dir("roundtrip");
    let spec = DeviceSpec::new(8, 4).unwrap();
    let request =
        "{\"id\":1,\"qasm\":\"qreg q[8];\\nh q[0];\\ncx q[0], q[7];\\n\",\"emit_program\":true}\n";

    // Session one: compile fresh, snapshot.
    let cache1 = Arc::new(CompileCache::new(64));
    let mut s1 = Service::new(
        Engine::builder()
            .backend(Backend::Tilt(spec))
            .compile_cache(Arc::clone(&cache1)),
    )
    .unwrap();
    let mut out1 = Vec::new();
    s1.serve(Cursor::new(request.to_string()), &mut out1, None)
        .unwrap();
    assert!(cache1.save(&dir).unwrap() >= 1);

    // Session two: restore, serve the same request from disk.
    let cache2 = Arc::new(CompileCache::new(64));
    let (loaded, rejected) = cache2.load(&dir).unwrap();
    assert!(loaded >= 1);
    assert_eq!(rejected, 0);
    let mut s2 = Service::new(
        Engine::builder()
            .backend(Backend::Tilt(spec))
            .compile_cache(Arc::clone(&cache2)),
    )
    .unwrap();
    let mut out2 = Vec::new();
    let summary = s2
        .serve(Cursor::new(request.to_string()), &mut out2, None)
        .unwrap();
    assert_eq!(
        String::from_utf8(out1).unwrap(),
        String::from_utf8(out2).unwrap(),
        "a restored entry must serve the byte-identical response (program text included)"
    );
    assert_eq!(summary.cache.hits, 1, "served from the restored snapshot");
    assert_eq!(summary.cache.misses, 0);

    // Corruption: flip one digit inside the snapshot payload. The line
    // fails digest verification and is dropped; the next session
    // simply recompiles.
    let path = dir.join("compile-cache.jsonl");
    let tampered = std::fs::read_to_string(&path)
        .unwrap()
        .replace("\"swaps\":", "\"swaps\":1");
    std::fs::write(&path, tampered).unwrap();
    let cache3 = Arc::new(CompileCache::new(64));
    let (loaded, rejected) = cache3.load(&dir).unwrap();
    assert_eq!(loaded, 0, "every tampered line is rejected");
    assert!(rejected >= 1);
    let mut s3 = Service::new(
        Engine::builder()
            .backend(Backend::Tilt(spec))
            .compile_cache(Arc::clone(&cache3)),
    )
    .unwrap();
    let mut out3 = Vec::new();
    let summary = s3
        .serve(Cursor::new(request.to_string()), &mut out3, None)
        .unwrap();
    assert_eq!(summary.cache.hits, 0, "cold start after corruption");
    assert_eq!(summary.stats.errors, 0, "recompile succeeds regardless");
    std::fs::remove_dir_all(&dir).ok();
}

/// A snapshot taken under one session config is *stale* for a session
/// configured differently: the keys no longer match, so the entry is
/// ignored (and the differently-configured session compiles fresh).
#[test]
fn stale_snapshot_entries_never_serve_a_reconfigured_session() {
    let dir = scratch_dir("stale");
    let request = "{\"id\":1,\"qasm\":\"qreg q[8];\\nh q[0];\\ncx q[0], q[7];\\n\"}\n";
    let cache1 = Arc::new(CompileCache::new(64));
    let mut s1 = Service::new(
        Engine::builder()
            .backend(Backend::Tilt(DeviceSpec::new(8, 4).unwrap()))
            .compile_cache(Arc::clone(&cache1)),
    )
    .unwrap();
    let mut out = Vec::new();
    s1.serve(Cursor::new(request.to_string()), &mut out, None)
        .unwrap();
    cache1.save(&dir).unwrap();

    // Same circuit, different head size: the persisted entry's config
    // fingerprint no longer matches.
    let cache2 = Arc::new(CompileCache::new(64));
    cache2.load(&dir).unwrap();
    let mut s2 = Service::new(
        Engine::builder()
            .backend(Backend::Tilt(DeviceSpec::new(8, 2).unwrap()))
            .compile_cache(Arc::clone(&cache2)),
    )
    .unwrap();
    let mut out2 = Vec::new();
    let summary = s2
        .serve(Cursor::new(request.to_string()), &mut out2, None)
        .unwrap();
    assert_eq!(summary.cache.hits, 0, "stale entry must not serve");
    assert_eq!(summary.stats.ok, 1, "fresh compile under the new config");
    let resp = Json::parse(String::from_utf8(out2).unwrap().lines().next().unwrap()).unwrap();
    assert!(
        resp.get("swaps").unwrap().as_f64().unwrap() >= 1.0,
        "head 2 must actually swap: {resp:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The serve loop's cache probe keys override requests under their own
/// overlaid config — and duplicate wire requests are answered with
/// byte-identical lines (id aside) without recompiling.
#[test]
fn service_duplicates_hit_across_default_and_override_sessions() {
    let mut s =
        Service::new(Engine::builder().backend(Backend::Tilt(DeviceSpec::new(16, 4).unwrap())))
            .unwrap();
    let text = qasm::to_qasm(&qaoa_maxcut(16, 2, 3));
    let line = |id: usize, scheduler: Option<&str>| {
        let mut obj = Json::object().set("id", id).set("qasm", text.as_str());
        if let Some(s) = scheduler {
            obj = obj.set("scheduler", s);
        }
        format!("{}\n", obj.render())
    };
    // Two identical default requests, two identical override requests.
    let input = format!(
        "{}{}{}{}{{\"op\":\"stats\"}}\n",
        line(1, None),
        line(2, None),
        line(3, Some("naive")),
        line(4, Some("naive")),
    );
    let mut out = Vec::new();
    let summary = s.serve(Cursor::new(input), &mut out, None).unwrap();
    let text = String::from_utf8(out).unwrap();
    let resps: Vec<&str> = text.lines().collect();
    assert_eq!(
        resps[0].replace("\"id\":1", "\"id\":2"),
        resps[1],
        "default-session duplicate is byte-identical"
    );
    assert_eq!(
        resps[2].replace("\"id\":3", "\"id\":4"),
        resps[3],
        "override duplicate is byte-identical"
    );
    assert_ne!(
        resps[0].replace("\"id\":1", ""),
        resps[2].replace("\"id\":3", ""),
        "the two configs genuinely compile differently"
    );
    assert_eq!(summary.cache.hits, 2);
    assert_eq!(summary.cache.misses, 2);
    assert_eq!(summary.cache.entries, 2);
}
