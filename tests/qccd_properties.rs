//! Property tests on the QCCD substrate: for arbitrary two-qubit
//! workloads and trap geometries, routing must preserve gate counts,
//! respect trap capacities, and produce well-formed primitive traces.

use proptest::prelude::*;
use tilt::circuit::{Circuit, Qubit};
use tilt::prelude::*;
use tilt::qccd::QccdOp;

fn workload() -> impl Strategy<Value = Circuit> {
    (6usize..20).prop_flat_map(|n| {
        let gate = (0..n, 0..n)
            .prop_filter("distinct", |(a, b)| a != b)
            .prop_map(|(a, b)| (a, b));
        prop::collection::vec(gate, 0..40).prop_map(move |pairs| {
            let mut c = Circuit::new(n);
            for (a, b) in pairs {
                c.cnot(Qubit(a), Qubit(b));
            }
            c
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every input two-qubit gate appears exactly once in the trace, and
    /// every recorded chain length respects the trap capacity.
    #[test]
    fn routing_preserves_gates_and_capacity(
        circuit in workload(),
        ions_per_trap in 4usize..10,
    ) {
        let spec = QccdSpec::for_qubits(circuit.n_qubits(), ions_per_trap).unwrap();
        let program = compile_qccd(&circuit, &spec).unwrap();
        prop_assert_eq!(program.two_qubit_gate_count(), circuit.two_qubit_count());
        for op in program.ops() {
            match *op {
                QccdOp::Split { chain_len_before, .. } => {
                    prop_assert!(chain_len_before <= spec.capacity());
                    prop_assert!(chain_len_before >= 1);
                }
                QccdOp::Merge { chain_len_after, .. } => {
                    prop_assert!(chain_len_after <= spec.capacity());
                }
                QccdOp::TwoQubitGate { trap, distance } => {
                    prop_assert!(trap < spec.n_traps());
                    prop_assert!(distance >= 1);
                    prop_assert!(distance < spec.capacity());
                }
                QccdOp::EdgeMove { sites, chain_len, .. } => {
                    prop_assert!(sites >= 1);
                    prop_assert!(chain_len <= spec.capacity());
                }
                QccdOp::ShuttleSegment { from, to } => {
                    prop_assert_eq!(from.abs_diff(to), 1);
                }
                QccdOp::Measure { trap } | QccdOp::SingleQubitGate { trap } => {
                    prop_assert!(trap < spec.n_traps());
                }
            }
        }
    }

    /// Splits and merges balance: every ion that leaves a chain lands in
    /// another.
    #[test]
    fn splits_and_merges_balance(circuit in workload()) {
        let spec = QccdSpec::for_qubits(circuit.n_qubits(), 6).unwrap();
        let program = compile_qccd(&circuit, &spec).unwrap();
        let splits = program
            .ops()
            .iter()
            .filter(|op| matches!(op, QccdOp::Split { .. }))
            .count();
        let merges = program
            .ops()
            .iter()
            .filter(|op| matches!(op, QccdOp::Merge { .. }))
            .count();
        prop_assert_eq!(splits, merges);
    }

    /// The estimator always yields a valid probability and counts that
    /// match the trace.
    #[test]
    fn estimator_is_consistent(circuit in workload(), cool in any::<bool>()) {
        let spec = QccdSpec::for_qubits(circuit.n_qubits(), 6).unwrap();
        let program = compile_qccd(&circuit, &spec).unwrap();
        let params = if cool {
            QccdParams::default()
        } else {
            QccdParams::default().without_cooling()
        };
        let r = estimate_qccd_success(
            &program,
            &NoiseModel::default(),
            &GateTimeModel::default(),
            &params,
        );
        prop_assert!((0.0..=1.0).contains(&r.success));
        prop_assert_eq!(r.two_qubit_gates, program.two_qubit_gate_count());
        prop_assert_eq!(r.transports, program.transport_count());
        prop_assert!(r.exec_time_us >= 0.0);
        prop_assert!(r.peak_quanta >= 0.0);
    }
}
