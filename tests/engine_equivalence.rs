//! Acceptance tests for the `Engine` session API: the unified front
//! door must be *decision-identical* to the legacy per-pass flows it
//! wraps — same program bytes, same success numbers, same timings —
//! and the batch path must match per-circuit runs exactly.
//!
//! The session engines here run with [`VerifyLevel::Strict`], so every
//! equivalence circuit doubles as a verifier fixture: a run that
//! matches the legacy bytes *and* completes strictly proves both that
//! compilation is unchanged and that its artifacts satisfy the
//! backend's invariant rule pack.

use tilt::benchmarks::bv::bernstein_vazirani;
use tilt::benchmarks::qaoa::qaoa_maxcut;
use tilt::engine::{Backend, Engine};
use tilt::prelude::*;
use tilt::sim::ExecTimeModel;

/// `Engine::run` on BV-16 produces a byte-identical `TiltProgram` and
/// numerically identical success/exec-time to the legacy
/// `Compiler::compile` + `estimate_success` + `execution_time_us` path.
#[test]
fn engine_matches_legacy_tilt_path_on_bv16() {
    let circuit = bernstein_vazirani(16, &[true; 15]);
    let spec = DeviceSpec::new(16, 8).unwrap();
    let noise = NoiseModel::default();
    let times = GateTimeModel::default();

    // Legacy three-call flow.
    let legacy = Compiler::new(spec).compile(&circuit).unwrap();
    let legacy_success = estimate_success(&legacy.program, &noise, &times);
    let legacy_time = execution_time_us(&legacy.program, &times, &ExecTimeModel::default());

    // Session flow, with the static verifier on.
    let report = Engine::builder()
        .backend(Backend::Tilt(spec))
        .verify(VerifyLevel::Strict)
        .build()
        .unwrap()
        .run(&circuit)
        .unwrap();
    assert!(report.diagnostics.is_empty());

    assert_eq!(
        report.tilt_program().unwrap(),
        &legacy.program,
        "engine must emit the identical op stream"
    );
    assert_eq!(report.ln_success, legacy_success.ln_success);
    assert_eq!(report.success, legacy_success.success);
    assert_eq!(report.exec_time_us, legacy_time);
    assert_eq!(report.compile.swap_count, legacy.report.swap_count);
    assert_eq!(
        report.compile.opposing_swap_count,
        legacy.report.opposing_swap_count
    );
    assert_eq!(report.compile.move_count, legacy.report.move_count);
    assert_eq!(
        report.compile.move_distance,
        legacy.report.move_distance_ions
    );
    assert_eq!(
        report.compile.native_gate_count,
        legacy.report.native_gate_count
    );
}

/// The same equivalence holds with non-default policies threaded
/// through the builder.
#[test]
fn engine_matches_legacy_with_custom_policies() {
    use tilt::compiler::route::LinqConfig;
    let circuit = qaoa_maxcut(24, 2, 5);
    let spec = DeviceSpec::new(24, 6).unwrap();
    let router = RouterKind::Linq(LinqConfig::with_max_swap_len(4));

    let mut compiler = Compiler::new(spec);
    compiler
        .router(router)
        .scheduler(SchedulerKind::NaiveNextGate);
    let legacy = compiler.compile(&circuit).unwrap();

    let report = Engine::builder()
        .backend(Backend::Tilt(spec))
        .router(router)
        .scheduler(SchedulerKind::NaiveNextGate)
        .verify(VerifyLevel::Strict)
        .build()
        .unwrap()
        .run(&circuit)
        .unwrap();
    assert_eq!(report.tilt_program().unwrap(), &legacy.program);
}

/// The QCCD backend reproduces the legacy `decompose` + `compile_qccd`
/// + `estimate_qccd_success` flow exactly.
#[test]
fn engine_matches_legacy_qccd_path() {
    let circuit = qaoa_maxcut(32, 4, 1);
    let spec = QccdSpec::for_qubits(32, 17).unwrap();

    let native = tilt::compiler::decompose::decompose(&circuit);
    let program = compile_qccd(&native, &spec).unwrap();
    let legacy = estimate_qccd_success(
        &program,
        &NoiseModel::default(),
        &GateTimeModel::default(),
        &QccdParams::default(),
    );

    let report = Engine::builder()
        .backend(Backend::Qccd(spec))
        .verify(VerifyLevel::Strict)
        .build()
        .unwrap()
        .run(&circuit)
        .unwrap();
    let q = report.qccd_report().unwrap();
    assert_eq!(q, &legacy);
    assert_eq!(report.ln_success, legacy.ln_success);
    assert_eq!(report.exec_time_us, legacy.exec_time_us);
    assert_eq!(report.compile.move_count, legacy.transports);
    assert_eq!(report.compile.move_distance, legacy.shuttle_segments);
}

/// The scaled backend reproduces the legacy `compile_scaled` +
/// `estimate_scaled` flow exactly.
#[test]
fn engine_matches_legacy_scaled_path() {
    let circuit = qaoa_maxcut(32, 2, 1);
    let spec = ScaleSpec::new(18, 8).unwrap();

    let program = compile_scaled(&circuit, &spec).unwrap();
    let legacy = estimate_scaled(&program, &NoiseModel::default(), &GateTimeModel::default());

    let report = Engine::builder()
        .backend(Backend::Scaled(spec))
        .verify(VerifyLevel::Strict)
        .build()
        .unwrap()
        .run(&circuit)
        .unwrap();
    let s = report.scale_report().unwrap();
    assert_eq!(s, &legacy);
    assert_eq!(report.compile.epr_pairs, program.epr_pairs);
    assert_eq!(report.compile.swap_count, legacy.total_swaps);
    assert_eq!(report.compile.move_count, legacy.total_moves);
}

/// A mixed bag of generated circuits for the batch acceptance check.
fn generated_circuits(count: usize) -> Vec<Circuit> {
    (0..count)
        .map(|k| match k % 4 {
            0 => {
                let mut c = Circuit::new(16);
                c.h(Qubit(0));
                for i in 1..16 {
                    c.cnot(Qubit(i - 1), Qubit(i));
                }
                c
            }
            1 => bernstein_vazirani(12, &[true; 11]),
            2 => qaoa_maxcut(16, 1, k as u64),
            _ => {
                let mut c = Circuit::new(14);
                for i in 0..7 {
                    c.cnot(Qubit(i), Qubit(13 - i));
                }
                c
            }
        })
        .collect()
}

/// `run_batch` over ≥100 generated circuits matches per-circuit `run`
/// results exactly, in submission order.
#[test]
fn batch_over_100_circuits_matches_per_circuit_runs() {
    // Strict verification across the whole generated corpus: 104
    // compilations' artifacts all pass the TILT rule pack.
    let engine = Engine::builder()
        .backend(Backend::Tilt(DeviceSpec::new(16, 4).unwrap()))
        .verify(VerifyLevel::Strict)
        .build()
        .unwrap();
    let circuits = generated_circuits(104);
    let batch = engine.run_batch(circuits.clone());
    assert_eq!(batch.len(), circuits.len());
    for (i, (circuit, batched)) in circuits.iter().zip(&batch).enumerate() {
        let single = engine.run(circuit).unwrap();
        let batched = batched.as_ref().unwrap();
        assert_eq!(
            single.tilt_program().unwrap(),
            batched.tilt_program().unwrap(),
            "circuit {i}: batch program must be byte-identical to a single run"
        );
        assert_eq!(single.ln_success, batched.ln_success, "circuit {i}");
        assert_eq!(single.exec_time_us, batched.exec_time_us, "circuit {i}");
        assert_eq!(
            single.compile.swap_count, batched.compile.swap_count,
            "circuit {i}"
        );
    }
}

/// Streaming delivers the same reports as the collecting variant, in
/// submission order.
#[test]
fn streaming_batch_matches_collected_batch() {
    let engine = Engine::tilt(DeviceSpec::new(16, 4).unwrap());
    let circuits = generated_circuits(32);
    let collected = engine.run_batch(circuits.clone());
    let mut streamed: Vec<(usize, f64)> = Vec::new();
    engine.run_batch_streaming(circuits, |i, r| {
        streamed.push((i, r.unwrap().ln_success));
    });
    assert_eq!(streamed.len(), collected.len());
    for (i, ln) in &streamed {
        assert_eq!(*ln, collected[*i].as_ref().unwrap().ln_success);
    }
    assert!(streamed.windows(2).all(|w| w[0].0 + 1 == w[1].0));
}
