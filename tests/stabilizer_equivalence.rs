//! Cross-validation of the tableau simulator against the dense state
//! vector on random Clifford circuits.
//!
//! Two complementary checks:
//!
//! * **Lockstep conditioning** — run the tableau once, then walk the
//!   same circuit on the dense simulator, *conditioning* the state on
//!   the tableau's measurement outcomes. At every `Measure` the dense
//!   marginal of a stabilizer state must be exactly 0, ½, or 1; the
//!   tableau's outcome must have positive probability (deterministic
//!   outcomes must match the 0/1 marginal bit-for-bit), and its
//!   deterministic-vs-random classification must agree with the
//!   marginal. This pins the *joint* outcome distribution's support
//!   and all deterministic claims, not just per-bit frequencies.
//! * **Sampled distributions** — on fixed circuits with genuinely
//!   random outcomes (including mid-circuit `Reset` of entangled
//!   qubits, whose internal branch neither simulator exposes), draw
//!   hundreds of runs from both simulators and compare the bitstring
//!   histograms with a two-sample chi-square bound.
//!
//! Circuits span 2–20 qubits — the dense side caps the range, the
//! tableau side is the one under test.

use std::collections::BTreeMap;
use std::f64::consts::{FRAC_PI_2, PI};

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tilt::circuit::{Circuit, Gate, Qubit};
use tilt::stabilizer;
use tilt::statevec::State;

/// Dense marginals of stabilizer states are exactly 0, ½, or 1; this
/// slack only absorbs f64 rounding across ≤60 Clifford gates.
const EPS: f64 = 1e-9;

/// Random Clifford circuits over the full lowered gate set, including
/// mid-circuit measurement. `Reset` is deliberately absent: resetting
/// an entangled qubit takes an internal random branch the tableau does
/// not expose, which lockstep conditioning cannot follow (the sampled
/// tests below cover `Reset` at the distribution level).
fn clifford_circuit(max_qubits: usize) -> impl Strategy<Value = Circuit> {
    (2usize..max_qubits + 1).prop_flat_map(|n| {
        let q = move || (0..n).prop_map(Qubit);
        let pair = move || {
            (0..n, 0..n)
                .prop_filter("distinct operands", |(a, b)| a != b)
                .prop_map(|(a, b)| (Qubit(a), Qubit(b)))
        };
        // Quarter turns for Rz/Zz/Xx; half turns for Cphase (π/2 there
        // would be the non-Clifford CS gate).
        let quarter = || (-4i32..5).prop_map(|k| k as f64 * FRAC_PI_2);
        let half = || (-2i32..3).prop_map(|k| k as f64 * PI);
        let gate = prop_oneof![
            q().prop_map(Gate::H),
            q().prop_map(Gate::S),
            q().prop_map(Gate::Sdg),
            q().prop_map(Gate::X),
            q().prop_map(Gate::Y),
            q().prop_map(Gate::Z),
            q().prop_map(Gate::SqrtX),
            q().prop_map(Gate::SqrtY),
            (q(), quarter()).prop_map(|(q, t)| Gate::Rz(q, t)),
            (q(), quarter()).prop_map(|(q, t)| Gate::Rx(q, t)),
            (q(), quarter()).prop_map(|(q, t)| Gate::Ry(q, t)),
            pair().prop_map(|(a, b)| Gate::Cnot(a, b)),
            pair().prop_map(|(a, b)| Gate::Cz(a, b)),
            (pair(), half()).prop_map(|((a, b), t)| Gate::Cphase(a, b, t)),
            (pair(), quarter()).prop_map(|((a, b), t)| Gate::Zz(a, b, t)),
            (pair(), quarter()).prop_map(|((a, b), t)| Gate::Xx(a, b, t)),
            pair().prop_map(|(a, b)| Gate::Swap(a, b)),
            q().prop_map(Gate::Measure),
            Just(Gate::Barrier),
        ];
        prop::collection::vec(gate, 1..60).prop_map(move |gates| Circuit::from_gates(n, gates))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The lockstep conditioning check described in the module docs,
    /// across random seeds (different seeds explore different random
    /// branches of the same circuit).
    #[test]
    fn tableau_outcomes_lie_on_the_dense_support(
        circuit in clifford_circuit(10),
        seed in 0u64..1000,
    ) {
        prop_assert!(circuit.is_clifford(), "strategy emits Clifford only");
        let run = stabilizer::run(&circuit, seed).expect("Clifford by construction");
        let mut state = State::zero(circuit.n_qubits());
        let (mut k, mut det, mut rnd) = (0usize, 0usize, 0usize);
        for gate in &circuit {
            match gate {
                Gate::Measure(q) => {
                    let p1 = state.prob_one(q.0);
                    let outcome = run.outcomes[k];
                    prop_assert!(
                        p1 < EPS || (p1 - 0.5).abs() < EPS || p1 > 1.0 - EPS,
                        "stabilizer-state marginal off the {{0, ½, 1}} grid: {p1}\ncircuit: {circuit}"
                    );
                    if p1 < EPS {
                        prop_assert!(!outcome, "measured 1 where the dense marginal is 0 (measurement {k})\ncircuit: {circuit}");
                        det += 1;
                    } else if p1 > 1.0 - EPS {
                        prop_assert!(outcome, "measured 0 where the dense marginal is 1 (measurement {k})\ncircuit: {circuit}");
                        det += 1;
                    } else {
                        rnd += 1;
                    }
                    // Condition the dense state on the tableau's branch
                    // so the rest of the circuit is compared on the
                    // same measurement record.
                    state.collapse(q.0, outcome);
                    k += 1;
                }
                Gate::Barrier => {}
                unitary => state.apply(unitary),
            }
        }
        prop_assert_eq!(k, run.outcomes.len(), "outcome count mismatch");
        prop_assert_eq!(
            (det, rnd),
            (run.deterministic_measurements, run.random_measurements),
            "deterministic/random classification disagrees with the dense marginals"
        );
    }
}

proptest! {
    // Few cases: the dense side pays 2^20 amplitudes per gate here.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The same lockstep check at the top of the cross-validated range:
    /// 20 qubits, shallower circuits.
    #[test]
    fn tableau_agrees_with_dense_at_twenty_qubits(
        gates in prop::collection::vec(0usize..6, 10..30),
        seed in 0u64..100,
    ) {
        let n = 20;
        let mut c = Circuit::new(n);
        // A deterministic skeleton entangling all 20 qubits, with
        // data-driven Clifford dressing and measurements on top.
        c.h(Qubit(0));
        for i in 1..n {
            c.cnot(Qubit(i - 1), Qubit(i));
        }
        for (i, &g) in gates.iter().enumerate() {
            let q = Qubit(i % n);
            match g {
                0 => { c.h(q); }
                1 => { c.s(q); }
                2 => { c.cz(q, Qubit((i + 7) % n)); }
                3 => { c.measure(q); }
                4 => { c.push(Gate::SqrtX(q)); }
                _ => { c.swap(q, Qubit((i + 3) % n)); }
            }
        }
        for i in 0..n {
            c.measure(Qubit(i));
        }
        let run = stabilizer::run(&c, seed).expect("Clifford by construction");
        let mut state = State::zero(n);
        let mut k = 0usize;
        for gate in &c {
            match gate {
                Gate::Measure(q) => {
                    let p1 = state.prob_one(q.0);
                    let outcome = run.outcomes[k];
                    prop_assert!(
                        p1 < EPS || (p1 - 0.5).abs() < EPS || p1 > 1.0 - EPS,
                        "marginal off the stabilizer grid at 20 qubits: {p1}"
                    );
                    let outcome_prob = if outcome { p1 } else { 1.0 - p1 };
                    prop_assert!(
                        outcome_prob > EPS,
                        "tableau outcome has zero dense probability (measurement {k})"
                    );
                    state.collapse(q.0, outcome);
                    k += 1;
                }
                Gate::Barrier => {}
                unitary => state.apply(unitary),
            }
        }
        prop_assert_eq!(k, run.outcomes.len());
    }
}

/// Two-sample chi-square statistic over the union of observed
/// bitstrings, with equal sample sizes: `Σ (a_i − b_i)² / (a_i + b_i)`.
/// Returns `(statistic, degrees_of_freedom)`.
fn chi_square(a: &BTreeMap<String, usize>, b: &BTreeMap<String, usize>) -> (f64, usize) {
    let keys: std::collections::BTreeSet<&String> = a.keys().chain(b.keys()).collect();
    let stat = keys
        .iter()
        .map(|k| {
            let (x, y) = (
                *a.get(*k).unwrap_or(&0) as f64,
                *b.get(*k).unwrap_or(&0) as f64,
            );
            (x - y) * (x - y) / (x + y)
        })
        .sum();
    (stat, keys.len().saturating_sub(1))
}

/// Draws `samples` runs from each simulator (disjoint deterministic
/// seed streams) and asserts the bitstring histograms agree under a
/// chi-square bound far above the df-scaled expectation — loose enough
/// never to flake on these fixed seeds, tight enough that a wrong
/// update rule (which skews whole branches by factors of 2) fails.
fn assert_sampled_agreement(name: &str, circuit: &Circuit, samples: u64) {
    assert!(circuit.is_clifford(), "{name}: case must be Clifford");
    let n = circuit.n_qubits();
    let mut tableau: BTreeMap<String, usize> = BTreeMap::new();
    let mut dense: BTreeMap<String, usize> = BTreeMap::new();
    for s in 0..samples {
        let run = stabilizer::run(circuit, s).expect("Clifford case");
        *tableau.entry(run.bitstring()).or_default() += 1;
        let mut rng = SmallRng::seed_from_u64(0x5eed_0000 + s);
        let (_, outcomes) = State::zero(n).run_sampled(circuit, &mut rng);
        let bits: String = outcomes
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect();
        *dense.entry(bits).or_default() += 1;
    }
    let (stat, df) = chi_square(&tableau, &dense);
    let bound = 16.0 + 8.0 * df as f64;
    assert!(
        stat <= bound,
        "{name}: chi-square {stat:.1} over {df} df exceeds {bound:.1}\n\
         tableau: {tableau:?}\ndense: {dense:?}"
    );
    // Both simulators must also agree on the *support* — a branch one
    // side never produces is a correctness bug, not sampling noise.
    for key in tableau.keys() {
        assert!(
            dense.contains_key(key),
            "{name}: tableau emits {key} but the dense simulator never does"
        );
    }
}

#[test]
fn bell_pair_distribution_matches() {
    let mut c = Circuit::new(2);
    c.h(Qubit(0))
        .cnot(Qubit(0), Qubit(1))
        .measure(Qubit(0))
        .measure(Qubit(1));
    assert_sampled_agreement("bell", &c, 400);
}

#[test]
fn ghz_with_basis_change_distribution_matches() {
    // GHZ-4, then an X-basis readout on half the register: outcomes mix
    // deterministic parity constraints with genuinely random bits.
    let mut c = Circuit::new(4);
    c.h(Qubit(0));
    for i in 1..4 {
        c.cnot(Qubit(i - 1), Qubit(i));
    }
    c.h(Qubit(0)).h(Qubit(1));
    for i in 0..4 {
        c.measure(Qubit(i));
    }
    assert_sampled_agreement("ghz4_xbasis", &c, 400);
}

#[test]
fn entangled_reset_distribution_matches() {
    // Reset of an entangled qubit: the internal branch is marginalized
    // out, so only distribution-level comparison is possible — exactly
    // what this case covers. After the reset, q0 reads 0 and q1 stays
    // uniform; the re-entangling H+CNOT then correlates q0 with q2.
    let mut c = Circuit::new(3);
    c.h(Qubit(0)).cnot(Qubit(0), Qubit(1));
    c.reset_qubit(Qubit(0));
    c.h(Qubit(0)).cnot(Qubit(0), Qubit(2));
    for i in 0..3 {
        c.measure(Qubit(i));
    }
    assert_sampled_agreement("entangled_reset", &c, 400);
}

#[test]
fn moelmer_soerensen_ladder_distribution_matches() {
    // The trapped-ion native entangler at its Clifford angle: an XX(π/2)
    // ladder with S-dressing, measured in the computational basis.
    let mut c = Circuit::new(3);
    c.xx(Qubit(0), Qubit(1), FRAC_PI_2);
    c.s(Qubit(1));
    c.xx(Qubit(1), Qubit(2), FRAC_PI_2);
    c.push(Gate::SqrtY(Qubit(0)));
    for i in 0..3 {
        c.measure(Qubit(i));
    }
    assert_sampled_agreement("ms_ladder", &c, 400);
}

#[test]
fn mid_circuit_measurement_distribution_matches() {
    // Measurement as a state-preparation step: the mid-circuit outcome
    // steers what the final readout can be, so any disagreement in the
    // collapse rule shows up as a histogram mismatch here.
    let mut c = Circuit::new(2);
    c.h(Qubit(0))
        .measure(Qubit(0))
        .h(Qubit(0))
        .cnot(Qubit(0), Qubit(1));
    c.measure(Qubit(0)).measure(Qubit(1));
    assert_sampled_agreement("mid_circuit", &c, 400);
}
