//! Property-based tests on the noise, success, and timing models.

use proptest::prelude::*;
use tilt::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Eq. 4 fidelity is monotone non-increasing in heat and gate time,
    /// and always a valid probability.
    #[test]
    fn fidelity_is_monotone_and_bounded(
        tau in 0.0f64..5000.0,
        q1 in 0.0f64..500.0,
        dq in 0.0f64..500.0,
        dtau in 0.0f64..5000.0,
    ) {
        let noise = NoiseModel::default();
        let base = noise.two_qubit_fidelity(tau, q1);
        prop_assert!((0.0..=1.0).contains(&base));
        prop_assert!(noise.two_qubit_fidelity(tau, q1 + dq) <= base);
        prop_assert!(noise.two_qubit_fidelity(tau + dtau, q1) <= base);
    }

    /// k scales exactly as the square root of the chain length.
    #[test]
    fn heating_scales_sqrt(n in 1usize..200, m in 1usize..200) {
        let noise = NoiseModel::default();
        let ratio = noise.k_for_chain(n * m * m) / noise.k_for_chain(n);
        prop_assert!((ratio - (m as f64)).abs() < 1e-9);
    }

    /// A strictly noisier model never yields a higher success estimate.
    #[test]
    fn noisier_model_never_wins(extra_eps in 0.0f64..1e-3, seed in 0u64..32) {
        let circuit = tilt::benchmarks::qaoa::qaoa_maxcut(16, 2, seed);
        let spec = DeviceSpec::new(16, 8).unwrap();
        let out = Compiler::new(spec).compile(&circuit).unwrap();
        let base_noise = NoiseModel::default();
        let worse_noise = NoiseModel {
            epsilon: base_noise.epsilon + extra_eps,
            ..base_noise
        };
        let times = GateTimeModel::default();
        let base = estimate_success(&out.program, &base_noise, &times);
        let worse = estimate_success(&out.program, &worse_noise, &times);
        prop_assert!(worse.success <= base.success + 1e-12);
    }

    /// Execution time is monotone in the shuttle slowness and never
    /// smaller than the pure gate-time lower bound.
    #[test]
    fn exec_time_bounds(speed in 0.1f64..10.0) {
        let circuit = tilt::benchmarks::bv::bernstein_vazirani(16, &[true; 15]);
        let spec = DeviceSpec::new(16, 8).unwrap();
        let out = Compiler::new(spec).compile(&circuit).unwrap();
        let times = GateTimeModel::default();
        let base = ExecTimeModel { shuttle_um_per_us: speed, ion_spacing_um: 5.0 };
        let t = execution_time_us(&out.program, &times, &base);
        let no_travel = ExecTimeModel { shuttle_um_per_us: f64::INFINITY, ion_spacing_um: 5.0 };
        let gates_only = execution_time_us(&out.program, &times, &no_travel);
        prop_assert!(t >= gates_only);
        let slower = ExecTimeModel { shuttle_um_per_us: speed / 2.0, ion_spacing_um: 5.0 };
        prop_assert!(execution_time_us(&out.program, &times, &slower) >= t);
    }

    /// The ideal device upper-bounds TILT for any circuit: same gates,
    /// no swaps, no heat.
    #[test]
    fn ideal_upper_bounds_tilt(seed in 0u64..64) {
        let circuit = tilt::benchmarks::rcs::random_circuit_sampling(4, 4, 4, seed);
        let spec = DeviceSpec::new(16, 8).unwrap();
        let out = Compiler::new(spec).compile(&circuit).unwrap();
        let noise = NoiseModel::default();
        let times = GateTimeModel::default();
        let tilt = estimate_success(&out.program, &noise, &times);
        let ideal = estimate_ideal_success(&circuit, &noise, &times);
        prop_assert!(tilt.success <= ideal.success * (1.0 + 1e-9));
    }

    /// QCCD success estimates are valid probabilities and cooling can only
    /// help.
    #[test]
    fn qccd_probabilities_and_cooling(seed in 0u64..32, ions in 5usize..12) {
        let circuit = tilt::benchmarks::qaoa::qaoa_maxcut(16, 2, seed);
        let native = tilt::compiler::decompose::decompose(&circuit);
        let spec = QccdSpec::for_qubits(16, ions).unwrap();
        let program = compile_qccd(&native, &spec).unwrap();
        let noise = NoiseModel::default();
        let times = GateTimeModel::default();
        let cooled = estimate_qccd_success(&program, &noise, &times, &QccdParams::default());
        let uncooled = estimate_qccd_success(
            &program, &noise, &times, &QccdParams::default().without_cooling());
        prop_assert!((0.0..=1.0).contains(&cooled.success));
        prop_assert!((0.0..=1.0).contains(&uncooled.success));
        prop_assert!(cooled.success >= uncooled.success - 1e-12);
    }
}
