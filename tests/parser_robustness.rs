//! Robustness property tests for the QASM parser: arbitrary input must
//! never panic — it either parses or returns a structured error — and
//! structurally mangled valid programs fail gracefully.

use proptest::prelude::*;
use tilt::circuit::qasm;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The parser is total: any string produces Ok or Err, never a panic.
    #[test]
    fn parser_never_panics_on_arbitrary_input(input in ".{0,200}") {
        let _ = qasm::parse_qasm(&input);
    }

    /// Same, over inputs biased toward QASM-looking token soup.
    #[test]
    fn parser_never_panics_on_qasm_like_soup(
        tokens in prop::collection::vec(
            prop_oneof![
                Just("qreg".to_string()),
                Just("creg".to_string()),
                Just("q[3]".to_string()),
                Just("q[".to_string()),
                Just("cx".to_string()),
                Just("rx(pi/2)".to_string()),
                Just("rx()".to_string()),
                Just("measure".to_string()),
                Just("->".to_string()),
                Just(";".to_string()),
                Just("{".to_string()),
                Just("}".to_string()),
                Just("gate".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just(",".to_string()),
                "[a-z0-9]{1,4}".prop_map(|s| s),
            ],
            0..30,
        )
    ) {
        let input = tokens.join(" ");
        let _ = qasm::parse_qasm(&input);
    }

    /// Truncating a valid program at any byte never panics.
    #[test]
    fn truncation_is_safe(cut in 0usize..400) {
        let full = qasm::to_qasm(&tilt::benchmarks::bv::bernstein_vazirani(8, &[true; 7]));
        let cut = cut.min(full.len());
        // Only cut at char boundaries (ASCII output, so every byte).
        let _ = qasm::parse_qasm(&full[..cut]);
    }
}

#[test]
fn angle_expression_edge_cases_error_not_panic() {
    for angle in ["", "pi/", "*2", "((pi)", "1e", "pi pi", "1..2", "-"] {
        let src = format!("qreg q[1];\nrx({angle}) q[0];\n");
        assert!(
            qasm::parse_qasm(&src).is_err(),
            "`{angle}` should be rejected"
        );
    }
}

#[test]
fn deeply_nested_parens_parse() {
    let src = "qreg q[1];\nrx(((((pi))))/((2))) q[0];\n";
    let c = qasm::parse_qasm(src).unwrap();
    match c.gates()[0] {
        tilt::circuit::Gate::Rx(_, a) => {
            assert!((a - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        }
        ref g => panic!("unexpected {g:?}"),
    }
}
